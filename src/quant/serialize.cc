#include "quant/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/file_io.h"
#include "quant/split.h"

namespace rpq::quant {
namespace {

constexpr char kMagic[4] = {'R', 'P', 'Q', 'Q'};
constexpr char kCodesMagic[4] = {'R', 'P', 'Q', 'C'};
// v1: plain models (header | product codebook | rotation).
// v2: split models (quant/split.h) — the header grows a has_split byte and
// the payload is the two 16-word level codebooks A then B; the product
// codebook and cross table are deterministic functions of the levels
// (MakeSplitQuantizer) and are rebuilt at load instead of stored.
// v3/v4: v1/v2 payloads plus a CRC32 trailer over every preceding byte —
// what Save now writes (through an atomic temp+rename, so a crash mid-save
// cannot clobber the previous model). v1/v2 files still load, un-checked.
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSplitVersion = 2;
constexpr uint32_t kCrcVersion = 3;
constexpr uint32_t kCrcSplitVersion = 4;

using io::AtomicFile;
using io::CrcReader;
using io::CrcWriter;
using io::FilePtr;
using io::ReadAll;
using io::WriteAll;

Status CorruptError(const std::string& path) {
  return Status::IOError(path + ": checksum mismatch (corrupt or torn file)");
}

}  // namespace

Status SaveQuantizer(const PqQuantizer& q, const std::string& path) {
  const SplitPqModel* split = q.split_model();
  if (split != nullptr && q.has_rotation()) {
    return Status::InvalidArgument(
        "split models with a rotation are not serializable");
  }
  AtomicFile file(path);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  CrcWriter w(file.get());
  uint32_t version = split != nullptr ? kCrcSplitVersion : kCrcVersion;
  uint32_t dim = static_cast<uint32_t>(q.dim());
  uint32_t m = static_cast<uint32_t>(q.num_chunks());
  uint32_t k = static_cast<uint32_t>(q.num_centroids());
  uint8_t has_rot = q.has_rotation() ? 1 : 0;
  if (!w.Write(kMagic, 4) || !w.Write(&version, 4) || !w.Write(&dim, 4) ||
      !w.Write(&m, 4) || !w.Write(&k, 4) || !w.Write(&has_rot, 1)) {
    return Status::IOError(path + ": header write failed");
  }
  if (split != nullptr) {
    uint8_t has_split = 1;
    if (!w.Write(&has_split, 1) ||
        !w.Write(split->a.data(), split->a.num_floats() * sizeof(float)) ||
        !w.Write(split->b.data(), split->b.num_floats() * sizeof(float))) {
      return Status::IOError(path + ": split codebook write failed");
    }
    if (!w.WriteTrailer()) return Status::IOError(path + ": trailer write failed");
    return file.Commit();
  }
  const Codebook& book = q.codebook();
  if (!w.Write(book.data(), book.num_floats() * sizeof(float))) {
    return Status::IOError(path + ": codebook write failed");
  }
  if (has_rot != 0) {
    const auto& r = q.rotation();
    if (!w.Write(r.data(), dim * size_t{dim} * sizeof(float))) {
      return Status::IOError(path + ": rotation write failed");
    }
  }
  if (!w.WriteTrailer()) return Status::IOError(path + ": trailer write failed");
  return file.Commit();
}

Result<std::unique_ptr<PqQuantizer>> LoadQuantizer(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  CrcReader r(f.get());
  char magic[4];
  uint32_t version = 0, dim = 0, m = 0, k = 0;
  uint8_t has_rot = 0;
  if (!r.Read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError(path + ": not an RPQ quantizer file");
  }
  if (!r.Read(&version, 4) || version < kVersion || version > kCrcSplitVersion) {
    return Status::IOError(path + ": unsupported version");
  }
  const bool checked = version >= kCrcVersion;
  const bool is_split = version == kSplitVersion || version == kCrcSplitVersion;
  if (!r.Read(&dim, 4) || !r.Read(&m, 4) || !r.Read(&k, 4) ||
      !r.Read(&has_rot, 1)) {
    return Status::IOError(path + ": truncated header");
  }
  if (dim == 0 || m == 0 || k == 0 || k > 256 || dim % m != 0) {
    return Status::IOError(path + ": invalid model shape");
  }
  if (is_split) {
    uint8_t has_split = 0;
    if (!r.Read(&has_split, 1)) {
      return Status::IOError(path + ": truncated header");
    }
    if (has_split == 0 || has_rot != 0 || k != 256) {
      return Status::IOError(path + ": invalid split model header");
    }
    Codebook a(m, 16, dim / m);
    Codebook b(m, 16, dim / m);
    if (!r.Read(a.data(), a.num_floats() * sizeof(float)) ||
        !r.Read(b.data(), b.num_floats() * sizeof(float))) {
      return Status::IOError(path + ": truncated split codebooks");
    }
    if (checked && !r.VerifyTrailer()) return CorruptError(path);
    return MakeSplitQuantizer(std::move(a), std::move(b));
  }
  Codebook book(m, k, dim / m);
  if (!r.Read(book.data(), book.num_floats() * sizeof(float))) {
    return Status::IOError(path + ": truncated codebook");
  }
  std::optional<linalg::Matrix> rotation;
  if (has_rot != 0) {
    linalg::Matrix rot(dim, dim);
    if (!r.Read(rot.data(), dim * size_t{dim} * sizeof(float))) {
      return Status::IOError(path + ": truncated rotation");
    }
    rotation = std::move(rot);
  }
  if (checked && !r.VerifyTrailer()) return CorruptError(path);
  return std::make_unique<PqQuantizer>(std::move(book), std::move(rotation));
}

Status SaveCodes(const std::vector<uint8_t>& codes, size_t code_size,
                 const std::string& path) {
  if (code_size == 0 || codes.size() % code_size != 0) {
    return Status::InvalidArgument("codes size not a multiple of code_size");
  }
  AtomicFile file(path);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  CrcWriter w(file.get());
  uint64_t n = codes.size() / code_size;
  uint32_t cs = static_cast<uint32_t>(code_size);
  if (!w.Write(kCodesMagic, 4) || !w.Write(&n, 8) || !w.Write(&cs, 4) ||
      !w.Write(codes.data(), codes.size()) || !w.WriteTrailer()) {
    return Status::IOError(path + ": write failed");
  }
  return file.Commit();
}

Result<std::vector<uint8_t>> LoadCodes(const std::string& path,
                                       size_t* code_size) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  CrcReader r(f.get());
  char magic[4];
  uint64_t n = 0;
  uint32_t cs = 0;
  if (!r.Read(magic, 4) || std::memcmp(magic, kCodesMagic, 4) != 0 ||
      !r.Read(&n, 8) || !r.Read(&cs, 4) || cs == 0) {
    return Status::IOError(path + ": bad codes header");
  }
  // The RPQC header carries no version, so the CRC trailer's presence is
  // detected by length: payload + 4 trailing bytes = checked file, payload
  // alone = legacy. Anything else cannot be well-formed. The same length
  // check bounds the n * cs allocation before trusting the header.
  const long long bytes_left = io::BytesRemaining(f.get());
  if (bytes_left < 0 || n > static_cast<uint64_t>(bytes_left) / cs) {
    return Status::IOError(path + ": header sizes exceed file contents");
  }
  const uint64_t payload = n * uint64_t{cs};
  const bool checked = static_cast<uint64_t>(bytes_left) == payload + 4;
  if (!checked && static_cast<uint64_t>(bytes_left) != payload) {
    return Status::IOError(path + ": file length disagrees with header");
  }
  std::vector<uint8_t> codes(payload);
  if (!r.Read(codes.data(), codes.size())) {
    return Status::IOError(path + ": truncated codes");
  }
  if (checked && !r.VerifyTrailer()) return CorruptError(path);
  if (code_size != nullptr) *code_size = cs;
  return codes;
}

}  // namespace rpq::quant
