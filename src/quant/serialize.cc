#include "quant/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/file_io.h"
#include "quant/split.h"

namespace rpq::quant {
namespace {

constexpr char kMagic[4] = {'R', 'P', 'Q', 'Q'};
constexpr char kCodesMagic[4] = {'R', 'P', 'Q', 'C'};
// v1: plain models (header | product codebook | rotation) — still written
// for every non-split model, so existing files and readers are untouched.
// v2: split models (quant/split.h) — the header grows a has_split byte and
// the payload is the two 16-word level codebooks A then B; the product
// codebook and cross table are deterministic functions of the levels
// (MakeSplitQuantizer) and are rebuilt at load instead of stored.
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSplitVersion = 2;

using io::FilePtr;
using io::ReadAll;
using io::WriteAll;

}  // namespace

Status SaveQuantizer(const PqQuantizer& q, const std::string& path) {
  const SplitPqModel* split = q.split_model();
  if (split != nullptr && q.has_rotation()) {
    return Status::InvalidArgument(
        "split models with a rotation are not serializable");
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  uint32_t version = split != nullptr ? kSplitVersion : kVersion;
  uint32_t dim = static_cast<uint32_t>(q.dim());
  uint32_t m = static_cast<uint32_t>(q.num_chunks());
  uint32_t k = static_cast<uint32_t>(q.num_centroids());
  uint8_t has_rot = q.has_rotation() ? 1 : 0;
  if (!WriteAll(f.get(), kMagic, 4) || !WriteAll(f.get(), &version, 4) ||
      !WriteAll(f.get(), &dim, 4) || !WriteAll(f.get(), &m, 4) ||
      !WriteAll(f.get(), &k, 4) || !WriteAll(f.get(), &has_rot, 1)) {
    return Status::IOError(path + ": header write failed");
  }
  if (split != nullptr) {
    uint8_t has_split = 1;
    if (!WriteAll(f.get(), &has_split, 1) ||
        !WriteAll(f.get(), split->a.data(),
                  split->a.num_floats() * sizeof(float)) ||
        !WriteAll(f.get(), split->b.data(),
                  split->b.num_floats() * sizeof(float))) {
      return Status::IOError(path + ": split codebook write failed");
    }
    return Status::OK();
  }
  const Codebook& book = q.codebook();
  if (!WriteAll(f.get(), book.data(), book.num_floats() * sizeof(float))) {
    return Status::IOError(path + ": codebook write failed");
  }
  if (has_rot != 0) {
    const auto& r = q.rotation();
    if (!WriteAll(f.get(), r.data(), dim * size_t{dim} * sizeof(float))) {
      return Status::IOError(path + ": rotation write failed");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<PqQuantizer>> LoadQuantizer(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  char magic[4];
  uint32_t version = 0, dim = 0, m = 0, k = 0;
  uint8_t has_rot = 0;
  if (!ReadAll(f.get(), magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError(path + ": not an RPQ quantizer file");
  }
  if (!ReadAll(f.get(), &version, 4) ||
      (version != kVersion && version != kSplitVersion)) {
    return Status::IOError(path + ": unsupported version");
  }
  if (!ReadAll(f.get(), &dim, 4) || !ReadAll(f.get(), &m, 4) ||
      !ReadAll(f.get(), &k, 4) || !ReadAll(f.get(), &has_rot, 1)) {
    return Status::IOError(path + ": truncated header");
  }
  if (dim == 0 || m == 0 || k == 0 || k > 256 || dim % m != 0) {
    return Status::IOError(path + ": invalid model shape");
  }
  if (version == kSplitVersion) {
    uint8_t has_split = 0;
    if (!ReadAll(f.get(), &has_split, 1)) {
      return Status::IOError(path + ": truncated header");
    }
    if (has_split == 0 || has_rot != 0 || k != 256) {
      return Status::IOError(path + ": invalid split model header");
    }
    Codebook a(m, 16, dim / m);
    Codebook b(m, 16, dim / m);
    if (!ReadAll(f.get(), a.data(), a.num_floats() * sizeof(float)) ||
        !ReadAll(f.get(), b.data(), b.num_floats() * sizeof(float))) {
      return Status::IOError(path + ": truncated split codebooks");
    }
    return MakeSplitQuantizer(std::move(a), std::move(b));
  }
  Codebook book(m, k, dim / m);
  if (!ReadAll(f.get(), book.data(), book.num_floats() * sizeof(float))) {
    return Status::IOError(path + ": truncated codebook");
  }
  std::optional<linalg::Matrix> rotation;
  if (has_rot != 0) {
    linalg::Matrix r(dim, dim);
    if (!ReadAll(f.get(), r.data(), dim * size_t{dim} * sizeof(float))) {
      return Status::IOError(path + ": truncated rotation");
    }
    rotation = std::move(r);
  }
  return std::make_unique<PqQuantizer>(std::move(book), std::move(rotation));
}

Status SaveCodes(const std::vector<uint8_t>& codes, size_t code_size,
                 const std::string& path) {
  if (code_size == 0 || codes.size() % code_size != 0) {
    return Status::InvalidArgument("codes size not a multiple of code_size");
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  uint64_t n = codes.size() / code_size;
  uint32_t cs = static_cast<uint32_t>(code_size);
  if (!WriteAll(f.get(), kCodesMagic, 4) || !WriteAll(f.get(), &n, 8) ||
      !WriteAll(f.get(), &cs, 4) ||
      !WriteAll(f.get(), codes.data(), codes.size())) {
    return Status::IOError(path + ": write failed");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> LoadCodes(const std::string& path,
                                       size_t* code_size) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  char magic[4];
  uint64_t n = 0;
  uint32_t cs = 0;
  if (!ReadAll(f.get(), magic, 4) || std::memcmp(magic, kCodesMagic, 4) != 0 ||
      !ReadAll(f.get(), &n, 8) || !ReadAll(f.get(), &cs, 4) || cs == 0) {
    return Status::IOError(path + ": bad codes header");
  }
  std::vector<uint8_t> codes(n * cs);
  if (!ReadAll(f.get(), codes.data(), codes.size())) {
    return Status::IOError(path + ": truncated codes");
  }
  if (code_size != nullptr) *code_size = cs;
  return codes;
}

}  // namespace rpq::quant
