// Lloyd's k-means with k-means++ seeding — the clustering core used to train
// every sub-codebook (PQ, OPQ, Catalyst output space, RPQ initialization).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rpq::quant {

/// Configuration for one k-means run.
struct KMeansOptions {
  size_t k = 256;
  size_t max_iters = 25;
  float epsilon = 1e-4f;  ///< stop when relative inertia improvement < epsilon
  uint64_t seed = 13;
  /// Optional warm start: k * dim floats used instead of k-means++ seeding
  /// (RPQ's final codebook refit starts from the gradient-trained codewords).
  std::vector<float> warm_start;
};

/// Result of a k-means run.
struct KMeansResult {
  std::vector<float> centroids;     ///< k x dim, row-major
  std::vector<uint32_t> assignment; ///< n labels
  double inertia = 0.0;             ///< sum of squared distances to centroids
  size_t iterations = 0;
};

/// Clusters n points of dimension dim (row-major `data`, n*dim floats).
/// Handles n < k by duplicating points; empty clusters are re-seeded from the
/// farthest members of the largest cluster.
KMeansResult RunKMeans(const float* data, size_t n, size_t dim,
                       const KMeansOptions& options);

/// Index of the closest centroid to `vec` among `k` centroids of `dim` dims.
uint32_t NearestCentroid(const float* vec, const float* centroids, size_t k,
                         size_t dim);

}  // namespace rpq::quant
