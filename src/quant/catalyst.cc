#include "quant/catalyst.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/adam.h"
#include "data/ground_truth.h"

namespace rpq::quant {
namespace {

// Forward pass activations kept for back-prop.
struct Activations {
  std::vector<float> h_pre, h, y, out;
  float norm = 1.0f;
};

struct Net {
  size_t d_in, hidden, d_out;
  float* w1;
  float* b1;
  float* w2;
  float* b2;

  void Forward(const float* x, Activations* act) const {
    act->h_pre.resize(hidden);
    act->h.resize(hidden);
    act->y.resize(d_out);
    act->out.resize(d_out);
    for (size_t i = 0; i < hidden; ++i) {
      act->h_pre[i] = b1[i] + Dot(w1 + i * d_in, x, d_in);
      act->h[i] = std::tanh(act->h_pre[i]);
    }
    for (size_t o = 0; o < d_out; ++o) {
      act->y[o] = b2[o] + Dot(w2 + o * hidden, act->h.data(), hidden);
    }
    act->norm = std::sqrt(std::max(SquaredNorm(act->y.data(), d_out), 1e-12f));
    for (size_t o = 0; o < d_out; ++o) act->out[o] = act->y[o] / act->norm;
  }

  // Accumulates parameter gradients for one sample given dL/d(out).
  void Backward(const float* x, const Activations& act, const float* grad_out,
                float* gw1, float* gb1, float* gw2, float* gb2) const {
    // Through the L2 normalization: dy = (g - out * <g, out>) / norm.
    float g_dot_out = Dot(grad_out, act.out.data(), d_out);
    std::vector<float> gy(d_out);
    for (size_t o = 0; o < d_out; ++o) {
      gy[o] = (grad_out[o] - act.out[o] * g_dot_out) / act.norm;
    }
    std::vector<float> gh(hidden, 0.0f);
    for (size_t o = 0; o < d_out; ++o) {
      float g = gy[o];
      if (g == 0.0f) continue;
      float* gw2row = gw2 + o * hidden;
      const float* w2row = w2 + o * hidden;
      for (size_t i = 0; i < hidden; ++i) {
        gw2row[i] += g * act.h[i];
        gh[i] += g * w2row[i];
      }
      gb2[o] += g;
    }
    for (size_t i = 0; i < hidden; ++i) {
      float g = gh[i] * (1.0f - act.h[i] * act.h[i]);
      if (g == 0.0f) continue;
      float* gw1row = gw1 + i * d_in;
      for (size_t j = 0; j < d_in; ++j) gw1row[j] += g * x[j];
      gb1[i] += g;
    }
  }
};

}  // namespace

std::unique_ptr<CatalystQuantizer> CatalystQuantizer::Train(
    const Dataset& train, const CatalystOptions& options) {
  RPQ_CHECK(!train.empty());
  Timer timer;
  auto q = std::unique_ptr<CatalystQuantizer>(new CatalystQuantizer());
  q->d_in_ = train.dim();
  q->hidden_ = options.hidden;
  q->d_out_ = options.d_out;

  Rng rng(options.seed);
  auto init = [&](std::vector<float>* w, size_t rows, size_t cols) {
    w->resize(rows * cols);
    float scale = std::sqrt(2.0f / static_cast<float>(cols));
    for (auto& v : *w) v = rng.Gaussian(0.0f, scale);
  };
  init(&q->w1_, q->hidden_, q->d_in_);
  q->b1_.assign(q->hidden_, 0.0f);
  init(&q->w2_, q->d_out_, q->hidden_);
  q->b2_.assign(q->d_out_, 0.0f);

  Net net{q->d_in_, q->hidden_, q->d_out_,
          q->w1_.data(), q->b1_.data(), q->w2_.data(), q->b2_.data()};

  // Exact positives once (the paper trains Catalyst from exact neighbors).
  auto knn = ComputeSelfKnn(train, options.knn_positives);

  size_t n_params = q->w1_.size() + q->b1_.size() + q->w2_.size() + q->b2_.size();
  core::AdamOptions aopt;
  aopt.lr = options.lr;
  core::Adam adam(n_params, aopt);
  std::vector<float> grads(n_params, 0.0f);
  float* gw1 = grads.data();
  float* gb1 = gw1 + q->w1_.size();
  float* gw2 = gb1 + q->b1_.size();
  float* gb2 = gw2 + q->w2_.size();

  size_t steps_per_epoch =
      std::max<size_t>(1, train.size() / options.batch_size);
  core::OneCycleSchedule sched(options.epochs * steps_per_epoch);

  std::vector<float> params_view;  // flattened on demand for Adam
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      std::fill(grads.begin(), grads.end(), 0.0f);
      std::vector<Activations> acts(options.batch_size);
      std::vector<uint32_t> anchors(options.batch_size);

      // Triplet + spreading gradients accumulated over the batch.
      for (size_t b = 0; b < options.batch_size; ++b) {
        uint32_t a_id = static_cast<uint32_t>(rng.UniformIndex(train.size()));
        anchors[b] = a_id;
        const auto& nn = knn[a_id];
        uint32_t p_id = nn[rng.UniformIndex(nn.size())].id;
        uint32_t n_id = static_cast<uint32_t>(rng.UniformIndex(train.size()));
        if (n_id == a_id) n_id = (n_id + 1) % train.size();

        Activations aa, ap, an;
        net.Forward(train[a_id], &aa);
        net.Forward(train[p_id], &ap);
        net.Forward(train[n_id], &an);
        acts[b] = aa;  // kept for KoLeo

        float dp = SquaredL2(aa.out.data(), ap.out.data(), q->d_out_);
        float dn = SquaredL2(aa.out.data(), an.out.data(), q->d_out_);
        if (options.margin + dp - dn > 0.0f) {
          std::vector<float> ga(q->d_out_), gp(q->d_out_), gn(q->d_out_);
          for (size_t o = 0; o < q->d_out_; ++o) {
            ga[o] = 2.0f * (an.out[o] - ap.out[o]);
            gp[o] = -2.0f * (aa.out[o] - ap.out[o]);
            gn[o] = 2.0f * (aa.out[o] - an.out[o]);
          }
          net.Backward(train[a_id], aa, ga.data(), gw1, gb1, gw2, gb2);
          net.Backward(train[p_id], ap, gp.data(), gw1, gb1, gw2, gb2);
          net.Backward(train[n_id], an, gn.data(), gw1, gb1, gw2, gb2);
        }
      }

      // KoLeo spreading regularizer over batch anchors:
      //   L = -(1/B) sum_i log(min_{j!=i} ||o_i - o_j|| + eps)
      constexpr float kEps = 1e-6f;
      for (size_t i = 0; i < options.batch_size; ++i) {
        size_t jbest = i;
        float best = std::numeric_limits<float>::max();
        for (size_t j = 0; j < options.batch_size; ++j) {
          if (j == i) continue;
          float d = SquaredL2(acts[i].out.data(), acts[j].out.data(), q->d_out_);
          if (d < best) {
            best = d;
            jbest = j;
          }
        }
        if (jbest == i) continue;
        float dist = std::sqrt(std::max(best, 1e-12f));
        float coef = -options.lambda /
                     (static_cast<float>(options.batch_size) * dist * (dist + kEps));
        std::vector<float> gi(q->d_out_), gj(q->d_out_);
        for (size_t o = 0; o < q->d_out_; ++o) {
          float diff = (acts[i].out[o] - acts[jbest].out[o]) / dist;
          gi[o] = coef * diff;
          gj[o] = -coef * diff;
        }
        net.Backward(train[anchors[i]], acts[i], gi.data(), gw1, gb1, gw2, gb2);
        net.Backward(train[anchors[jbest]], acts[jbest], gj.data(), gw1, gb1, gw2,
                     gb2);
      }

      // Flatten params, step, scatter back.
      params_view.clear();
      params_view.insert(params_view.end(), q->w1_.begin(), q->w1_.end());
      params_view.insert(params_view.end(), q->b1_.begin(), q->b1_.end());
      params_view.insert(params_view.end(), q->w2_.begin(), q->w2_.end());
      params_view.insert(params_view.end(), q->b2_.begin(), q->b2_.end());
      adam.Step(params_view.data(), grads.data(),
                sched.Scale(adam.steps() + 1));
      size_t off = 0;
      std::memcpy(q->w1_.data(), params_view.data() + off,
                  q->w1_.size() * sizeof(float));
      off += q->w1_.size();
      std::memcpy(q->b1_.data(), params_view.data() + off,
                  q->b1_.size() * sizeof(float));
      off += q->b1_.size();
      std::memcpy(q->w2_.data(), params_view.data() + off,
                  q->w2_.size() * sizeof(float));
      off += q->w2_.size();
      std::memcpy(q->b2_.data(), params_view.data() + off,
                  q->b2_.size() * sizeof(float));
    }
  }

  // PQ in the learned output space.
  Dataset transformed(train.size(), q->d_out_);
  for (size_t i = 0; i < train.size(); ++i) {
    q->Transform(train[i], transformed[i]);
  }
  PqOptions pq = options.pq;
  RPQ_CHECK_EQ(q->d_out_ % pq.m, 0u);
  q->pq_ = PqQuantizer::Train(transformed, pq);
  q->training_seconds_ = timer.ElapsedSeconds();
  return q;
}

void CatalystQuantizer::Transform(const float* vec, float* out) const {
  Activations act;
  Net net{d_in_, hidden_, d_out_,
          const_cast<float*>(w1_.data()), const_cast<float*>(b1_.data()),
          const_cast<float*>(w2_.data()), const_cast<float*>(b2_.data())};
  net.Forward(vec, &act);
  std::memcpy(out, act.out.data(), d_out_ * sizeof(float));
}

void CatalystQuantizer::Encode(const float* vec, uint8_t* code) const {
  std::vector<float> t(d_out_);
  Transform(vec, t.data());
  pq_->Encode(t.data(), code);
}

void CatalystQuantizer::Decode(const uint8_t* code, float* out) const {
  pq_->Decode(code, out);
}

void CatalystQuantizer::BuildLookupTable(const float* query, float* table) const {
  std::vector<float> t(d_out_);
  Transform(query, t.data());
  pq_->BuildLookupTable(t.data(), table);
}

size_t CatalystQuantizer::ModelSizeBytes() const {
  return (w1_.size() + b1_.size() + w2_.size() + b2_.size()) * sizeof(float) +
         pq_->ModelSizeBytes();
}

}  // namespace rpq::quant
