#include "quant/codebook.h"

// Codebook is header-only today; this TU anchors the target and keeps room
// for serialization helpers.
