// Optimized Product Quantization [27]: alternating minimization of
//   ||R X - decode(encode(R X))||_F  over orthonormal R and codebooks.
// The R-step is an orthogonal Procrustes problem solved with our Jacobi SVD.
#pragma once

#include <memory>

#include "quant/pq.h"

namespace rpq::quant {

/// OPQ training knobs (extends PQ options with outer iterations).
struct OpqOptions {
  PqOptions pq;
  size_t outer_iters = 8;  ///< alternations between R-step and codebook-step
};

/// Trains OPQ and returns it as a rotation-equipped PqQuantizer.
std::unique_ptr<PqQuantizer> TrainOpq(const Dataset& train,
                                      const OpqOptions& options);

}  // namespace rpq::quant
