// Binary (de)serialization for quantizer models and code arrays, so trained
// RPQ/OPQ/PQ models can be shipped separately from the data they compress —
// what a production deployment does (train offline on a GPU box, serve the
// frozen model on memory-constrained searchers).
//
// Format (little-endian):
//   magic "RPQQ" | u32 version | u32 dim | u32 M | u32 K | u8 has_rotation
//   | codebook floats (M*K*(dim/M)) | rotation floats (dim*dim, if present)
#pragma once

#include <string>

#include "common/status.h"
#include "quant/pq.h"

namespace rpq::quant {

/// Persists a (rotation +) PQ model. RPQ deploys as PqQuantizer, so this
/// covers PQ, OPQ and trained RPQ alike.
Status SaveQuantizer(const PqQuantizer& quantizer, const std::string& path);

/// Loads a model written by SaveQuantizer.
Result<std::unique_ptr<PqQuantizer>> LoadQuantizer(const std::string& path);

/// Persists a code array (n x code_size bytes) with its shape.
Status SaveCodes(const std::vector<uint8_t>& codes, size_t code_size,
                 const std::string& path);

/// Loads codes; returns the flat byte vector and writes the code size.
Result<std::vector<uint8_t>> LoadCodes(const std::string& path,
                                       size_t* code_size);

}  // namespace rpq::quant
