// FastScan / Quick-ADC style scan path for 4-bit PQ (K <= 16): the query's
// lookup table is quantized to uint8 with one shared scale, database codes
// are re-laid-out into transposed 32-code blocks, and the SIMD subsystem
// scores a whole block row per in-register shuffle (simd::AdcFastScan).
// Distances come back as integer LUT sums that one affine map (bias +
// scale * sum) turns into the familiar squared-distance estimate:
//
//   float LUT   t[j][c]                     (m rows of K <= 16 entries)
//   u8 LUT      t8[j][c] = round((t[j][c] - min_j) / scale)
//   estimate    bias + scale * sum_j t8[j][code_j],  bias = sum_j min_j
//
// |estimate - float ADC| <= 0.5 * scale * m (ErrorBound()), which a cheap
// float-ADC rerank of the top candidates recovers — see
// core::MemoryIndex Search with DistanceMode::kFastScan.
//
// Code layout (PackedCodes::Pack): codes are grouped into blocks of 32, and
// within a block stored sub-quantizer-major as m2/2 rows of 32 bytes (m2 = m
// rounded up to even); row p, byte i holds code i's 4-bit index for
// sub-quantizer 2p in the low nibble and 2p+1 in the high nibble. One 32-byte
// row is exactly one AVX2 shuffle operand; tails are zero-padded.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "quant/adc.h"
#include "quant/quantizer.h"

namespace rpq::quant {

/// Flat array of 4-bit codes in the blocked, transposed FastScan layout.
struct PackedCodes {
  static constexpr size_t kBlockCodes = 32;  ///< codes per block

  size_t num_codes = 0;
  size_t m = 0;   ///< sub-quantizers per code (unpadded)
  size_t m2 = 0;  ///< m rounded up to even (layout rows = m2/2)
  std::vector<uint8_t> data;

  size_t block_bytes() const { return 16 * m2; }
  size_t num_blocks() const { return (num_codes + kBlockCodes - 1) / kBlockCodes; }

  /// Re-lays out n byte-per-chunk codes (every byte < 16) into blocks.
  /// n = 0 yields an empty, appendable layout of the given code_size.
  static PackedCodes Pack(const uint8_t* codes, size_t n, size_t code_size);

  /// Appends one byte-per-chunk code in place: the tail block's zero padding
  /// becomes the new slot (a fresh zeroed block is grown when full), so
  /// streaming inserts — IVF lists take cheap appends instead of the graph
  /// repair a proximity-graph insert needs — never re-lay existing codes.
  void Append(const uint8_t* code);

  /// Code i's index for sub-quantizer j (test/debug accessor).
  uint8_t At(size_t i, size_t j) const;
};

/// Query-time FastScan state: the u8-quantized lookup table plus the affine
/// map back to float distances. Built from any 4-bit-capable quantizer
/// (num_centroids() <= 16) or from an existing float DistanceLut so the
/// float table is computed once and shared with the rerank pass.
class FastScanTable {
 public:
  FastScanTable(const VectorQuantizer& quantizer, const float* query);
  explicit FastScanTable(const DistanceLut& lut);
  /// Builds from a raw m x k float table (k <= 16) the caller computed
  /// itself — split tables (quant/split.h) hand in their interleaved 2m-row
  /// per-level table directly without routing through a quantizer.
  FastScanTable(const float* table, size_t m, size_t k);

  size_t num_chunks() const { return m_; }     ///< m (unpadded)
  size_t padded_chunks() const { return m2_; } ///< m2 (even, layout rows * 2)
  const uint8_t* lut8() const { return lut8_.data(); }
  float bias() const { return bias_; }
  float scale() const { return scale_; }

  /// Maps a raw kernel sum to the float distance estimate.
  float DecodeSum(uint32_t sum) const {
    return bias_ + scale_ * static_cast<float>(sum);
  }

  /// Worst-case |estimate - float ADC distance| from u8 LUT rounding.
  float ErrorBound() const { return 0.5f * scale_ * static_cast<float>(m_); }

  /// Estimate for one unpacked byte-per-chunk code — the same integer sum the
  /// kernels produce, so it is bit-identical to the blocked scan.
  float Distance(const uint8_t* code) const {
    uint32_t sum = 0;
    for (size_t j = 0; j < m_; ++j) sum += lut8_[j * 16 + code[j]];
    return DecodeSum(sum);
  }

  /// Raw u16 sums for n_blocks packed blocks (32 sums per block).
  void ScanBlocks(const uint8_t* packed, size_t n_blocks, uint16_t* sums) const;

  /// Flat scan: float distance estimates for all packed codes.
  void Scan(const PackedCodes& packed, float* out) const;

 private:
  void Quantize(const float* table, size_t k);

  size_t m_ = 0, m2_ = 0;
  float bias_ = 0.f, scale_ = 0.f;
  std::vector<uint8_t> lut8_;  // m2 x 16, padded rows zero
};

/// Per-vertex packed adjacency codes: for every vertex, the 4-bit codes of
/// its graph neighbors (in adjacency order) stored as FastScan blocks. This
/// duplicates each code once per in-edge — the classic FastScan-on-graph
/// trade: ~deg * m/2 bytes per vertex buys scoring a whole expansion with
/// register-resident shuffles instead of per-neighbor table gathers.
struct PackedNeighborBlocks {
  size_t m = 0;
  size_t m2 = 0;
  std::vector<uint8_t> data;
  std::vector<uint64_t> offsets;  ///< per-vertex byte offset (size n + 1)

  size_t block_bytes() const { return 16 * m2; }
  size_t MemoryBytes() const {
    return data.size() + offsets.size() * sizeof(uint64_t);
  }

  static PackedNeighborBlocks Build(const graph::ProximityGraph& graph,
                                    const uint8_t* codes, size_t code_size);
};

/// Beam-search oracle for the FastScan path. BeamSearch detects
/// ScoreNeighbors() and scores a vertex's whole adjacency in one pass; the
/// single-vertex form (entry points) uses the same u8 LUT, so every estimate
/// in a query comes from one estimator. Per-query object — the scratch
/// buffer makes it cheap to construct but not shareable across threads.
class FastScanNeighborOracle {
 public:
  FastScanNeighborOracle(const FastScanTable& table, const uint8_t* codes,
                         size_t code_size, const PackedNeighborBlocks& blocks)
      : table_(table), codes_(codes), code_size_(code_size), blocks_(blocks) {}

  float operator()(uint32_t v) const {
    return table_.Distance(codes_ + static_cast<size_t>(v) * code_size_);
  }

  /// Starts pulling v's packed block toward L1. The beam search calls this
  /// for the likely next expansion while it finishes the current one, hiding
  /// the block's cache-miss latency behind the loop turn.
  void PrefetchNeighbors(uint32_t v) const {
#if defined(__GNUC__) || defined(__clang__)
    const uint8_t* p = blocks_.data.data() + blocks_.offsets[v];
    const size_t bytes = blocks_.offsets[v + 1] - blocks_.offsets[v];
    for (size_t off = 0; off < bytes && off < 512; off += 64) {
      __builtin_prefetch(p + off);
    }
#else
    (void)v;
#endif
  }

  /// Estimates for all `n` neighbors of v (n must be v's full degree, in
  /// adjacency order — the order the blocks were packed in). Inline: this
  /// runs once per beam-search expansion.
  void ScoreNeighbors(uint32_t v, const uint32_t* nbrs, size_t n,
                      float* out) const {
    (void)nbrs;  // blocks are packed in adjacency order; ids only name outputs
    if (n == 0) return;
    const size_t n_blocks =
        (n + PackedCodes::kBlockCodes - 1) / PackedCodes::kBlockCodes;
    sums_.resize(n_blocks * PackedCodes::kBlockCodes);
    table_.ScanBlocks(blocks_.data.data() + blocks_.offsets[v], n_blocks,
                      sums_.data());
    const float bias = table_.bias(), scale = table_.scale();
    for (size_t i = 0; i < n; ++i) {
      out[i] = bias + scale * static_cast<float>(sums_[i]);
    }
  }

 private:
  const FastScanTable& table_;
  const uint8_t* codes_;
  size_t code_size_;
  const PackedNeighborBlocks& blocks_;
  mutable std::vector<uint16_t> sums_;  // per-query scratch
};

}  // namespace rpq::quant
