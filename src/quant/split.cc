#include "quant/split.h"

#include <cstring>

#include "common/logging.h"
#include "quant/kmeans.h"
#include "simd/simd.h"

namespace rpq::quant {
namespace {

// Materializes the 256-word product codebook Word(j, (a<<4)|b) = A[a] + B[b].
Codebook MaterializeProduct(const Codebook& a, const Codebook& b) {
  const size_t m = a.num_chunks(), sub = a.sub_dim();
  Codebook product(m, 256, sub);
  for (size_t j = 0; j < m; ++j) {
    for (size_t hi = 0; hi < 16; ++hi) {
      for (size_t lo = 0; lo < 16; ++lo) {
        float* w = product.Word(j, (hi << 4) | lo);
        const float* wa = a.Word(j, hi);
        const float* wb = b.Word(j, lo);
        for (size_t d = 0; d < sub; ++d) w[d] = wa[d] + wb[d];
      }
    }
  }
  return product;
}

// The interleaved 2m x 16 float table of the exact decomposition: row 2j =
// v_j (level-2, low nibble), row 2j+1 = u_j (level-1, high nibble).
FastScanTable BuildSplitTable(const SplitPqModel& model,
                              const float* rotated_query) {
  const size_t m = model.num_chunks(), sub = model.sub_dim();
  std::vector<float> table(2 * m * 16);
  for (size_t j = 0; j < m; ++j) {
    const float* qj = rotated_query + j * sub;
    float* vrow = table.data() + (2 * j) * 16;
    float* urow = table.data() + (2 * j + 1) * 16;
    simd::L2ToMany(qj, model.b.Chunk(j), 16, sub, vrow);
    const float qnorm = simd::SquaredNorm(qj, sub);
    for (size_t c = 0; c < 16; ++c) vrow[c] -= qnorm;
    simd::L2ToMany(qj, model.a.Chunk(j), 16, sub, urow);
  }
  return FastScanTable(table.data(), 2 * m, 16);
}

FastScanTable BuildFromQuantizer(const PqQuantizer& quantizer,
                                 const float* query) {
  const SplitPqModel* model = quantizer.split_model();
  RPQ_CHECK(model != nullptr &&
            "SplitFastScanTable needs a split-trained quantizer "
            "(TrainSplitPq)");
  std::vector<float> rot(quantizer.dim());
  quantizer.Rotate(query, rot.data());
  return BuildSplitTable(*model, rot.data());
}

}  // namespace

void SplitPqModel::PrecomputeCross() {
  const size_t m = num_chunks(), sub = sub_dim();
  cross.assign(m * 256, 0.f);
  const auto& ops = simd::ScalarOps();  // backend-independent, see header
  for (size_t j = 0; j < m; ++j) {
    for (size_t hi = 0; hi < 16; ++hi) {
      for (size_t lo = 0; lo < 16; ++lo) {
        cross[j * 256 + ((hi << 4) | lo)] =
            2.f * ops.dot(a.Word(j, hi), b.Word(j, lo), sub);
      }
    }
  }
}

std::unique_ptr<PqQuantizer> MakeSplitQuantizer(Codebook a, Codebook b) {
  RPQ_CHECK_EQ(a.num_chunks(), b.num_chunks());
  RPQ_CHECK_EQ(a.sub_dim(), b.sub_dim());
  RPQ_CHECK_EQ(a.num_centroids(), size_t{16});
  RPQ_CHECK_EQ(b.num_centroids(), size_t{16});
  auto model = std::make_unique<SplitPqModel>();
  model->a = std::move(a);
  model->b = std::move(b);
  model->PrecomputeCross();
  auto pq = std::make_unique<PqQuantizer>(
      MaterializeProduct(model->a, model->b), std::nullopt);
  pq->set_split_model(std::move(model));
  return pq;
}

std::unique_ptr<PqQuantizer> TrainSplitPq(const Dataset& train,
                                          const PqOptions& options) {
  RPQ_CHECK(!train.empty());
  RPQ_CHECK_EQ(train.dim() % options.m, 0u);
  RPQ_CHECK(options.nbits == 8 && options.effective_k() == 256 &&
            "the split regime is K = 256 under 8-bit codes; plain 4-bit "
            "FastScan already covers K <= 16");
  const size_t n = train.size(), dim = train.dim(), sub = dim / options.m;
  Codebook a(options.m, 16, sub);
  Codebook b(options.m, 16, sub);

  std::vector<float> chunk(n * sub);
  std::vector<float> resid(n * sub);
  for (size_t j = 0; j < options.m; ++j) {
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(chunk.data() + i * sub, train.data() + i * dim + j * sub,
                  sub * sizeof(float));
    }
    KMeansOptions km;
    km.k = 16;
    km.max_iters = options.kmeans_iters;
    km.seed = options.seed + j;
    KMeansResult level1 = RunKMeans(chunk.data(), n, sub, km);
    std::memcpy(a.Chunk(j), level1.centroids.data(),
                16 * sub * sizeof(float));

    // Level 2 refines what level 1 left behind: cluster the within-chunk
    // residuals so A[a] + B[b] spans a 256-point grid shaped like the data.
    for (size_t i = 0; i < n; ++i) {
      const float* c = level1.centroids.data() +
                       static_cast<size_t>(level1.assignment[i]) * sub;
      for (size_t d = 0; d < sub; ++d) {
        resid[i * sub + d] = chunk[i * sub + d] - c[d];
      }
    }
    km.seed = options.seed + options.m + j;  // decorrelate from level 1
    KMeansResult level2 = RunKMeans(resid.data(), n, sub, km);
    std::memcpy(b.Chunk(j), level2.centroids.data(),
                16 * sub * sizeof(float));
  }
  return MakeSplitQuantizer(std::move(a), std::move(b));
}

SplitFastScanTable::SplitFastScanTable(const PqQuantizer& quantizer,
                                       const float* query)
    : m_(quantizer.num_chunks()), fs_(BuildFromQuantizer(quantizer, query)) {}

SplitFastScanTable::SplitFastScanTable(const SplitPqModel& model,
                                       const float* rotated_query)
    : m_(model.num_chunks()), fs_(BuildSplitTable(model, rotated_query)) {}

void SplitFastScanTable::ScanBlocks(const uint8_t* packed, size_t n_blocks,
                                    uint16_t* sums) const {
  simd::AdcFastScanSplit(fs_.lut8(), m_, packed, n_blocks, sums);
}

}  // namespace rpq::quant
