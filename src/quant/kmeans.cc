#include "quant/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"
#include "simd/simd.h"

namespace rpq::quant {
namespace {

// k-means++ seeding: first centroid uniform, then proportional to D^2.
std::vector<float> SeedPlusPlus(const float* data, size_t n, size_t dim, size_t k,
                                Rng* rng) {
  std::vector<float> centroids(k * dim);
  std::vector<float> min_d2(n, std::numeric_limits<float>::max());

  size_t first = rng->UniformIndex(n);
  std::memcpy(centroids.data(), data + first * dim, dim * sizeof(float));

  for (size_t c = 1; c < k; ++c) {
    const float* prev = centroids.data() + (c - 1) * dim;
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      float d = SquaredL2(data + i * dim, prev, dim);
      min_d2[i] = std::min(min_d2[i], d);
      total += min_d2[i];
    }
    size_t chosen = 0;
    if (total > 0) {
      double r = rng->Uniform(0.0f, 1.0f) * total;
      double acc = 0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_d2[i];
        if (acc >= r) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformIndex(n);
    }
    std::memcpy(centroids.data() + c * dim, data + chosen * dim,
                dim * sizeof(float));
  }
  return centroids;
}

}  // namespace

uint32_t NearestCentroid(const float* vec, const float* centroids, size_t k,
                         size_t dim) {
  // One fused kernel call over the whole centroid block, then an argmin scan.
  thread_local std::vector<float> d2;
  d2.resize(k);
  simd::L2ToMany(vec, centroids, k, dim, d2.data());
  uint32_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t c = 0; c < k; ++c) {
    if (d2[c] < best_d) {
      best_d = d2[c];
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

KMeansResult RunKMeans(const float* data, size_t n, size_t dim,
                       const KMeansOptions& options) {
  RPQ_CHECK_GT(n, 0u);
  RPQ_CHECK_GT(dim, 0u);
  size_t k = std::min(options.k, n);  // cannot have more clusters than points
  Rng rng(options.seed);

  KMeansResult res;
  if (!options.warm_start.empty()) {
    RPQ_CHECK_EQ(options.warm_start.size(), options.k * dim);
    res.centroids.assign(options.warm_start.begin(),
                         options.warm_start.begin() + k * dim);
  } else {
    res.centroids = SeedPlusPlus(data, n, dim, k, &rng);
  }
  res.assignment.assign(n, 0);

  std::vector<size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    // Assignment step.
    double inertia = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = NearestCentroid(data + i * dim, res.centroids.data(), k, dim);
      res.assignment[i] = c;
      inertia += SquaredL2(data + i * dim, res.centroids.data() + c * dim, dim);
    }
    res.inertia = inertia;
    res.iterations = iter + 1;

    // Update step.
    std::fill(res.centroids.begin(), res.centroids.end(), 0.0f);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = res.assignment[i];
      float* ctr = res.centroids.data() + c * dim;
      const float* row = data + i * dim;
      for (size_t j = 0; j < dim; ++j) ctr[j] += row[j];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from a random point.
        size_t pick = rng.UniformIndex(n);
        std::memcpy(res.centroids.data() + c * dim, data + pick * dim,
                    dim * sizeof(float));
        continue;
      }
      float inv = 1.0f / static_cast<float>(counts[c]);
      float* ctr = res.centroids.data() + c * dim;
      for (size_t j = 0; j < dim; ++j) ctr[j] *= inv;
    }

    if (prev_inertia < std::numeric_limits<double>::max() &&
        prev_inertia - inertia <= options.epsilon * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }

  // Pad centroids when n < options.k so callers always see options.k rows.
  if (k < options.k) {
    res.centroids.resize(options.k * dim);
    for (size_t c = k; c < options.k; ++c) {
      std::memcpy(res.centroids.data() + c * dim,
                  res.centroids.data() + (c % k) * dim, dim * sizeof(float));
    }
  }
  return res;
}

}  // namespace rpq::quant
