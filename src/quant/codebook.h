// Product-quantization codebook: M sub-codebooks of K codewords each
// (Definition 3 of the paper). Shared by PQ, OPQ and the learned RPQ.
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace rpq::quant {

/// Flat storage of M x K codewords, each of sub_dim floats.
class Codebook {
 public:
  Codebook() : m_(0), k_(0), sub_dim_(0) {}
  Codebook(size_t m, size_t k, size_t sub_dim)
      : m_(m), k_(k), sub_dim_(sub_dim), words_(m * k * sub_dim, 0.0f) {}

  size_t num_chunks() const { return m_; }     ///< M
  size_t num_centroids() const { return k_; }  ///< K
  size_t sub_dim() const { return sub_dim_; }  ///< D / M
  size_t dim() const { return m_ * sub_dim_; } ///< D (rotated space)

  /// Codeword k of sub-codebook j.
  float* Word(size_t j, size_t k) {
    RPQ_CHECK(j < m_ && k < k_);
    return words_.data() + (j * k_ + k) * sub_dim_;
  }
  const float* Word(size_t j, size_t k) const {
    RPQ_CHECK(j < m_ && k < k_);
    return words_.data() + (j * k_ + k) * sub_dim_;
  }
  /// Start of sub-codebook j (K x sub_dim contiguous floats).
  float* Chunk(size_t j) { return words_.data() + j * k_ * sub_dim_; }
  const float* Chunk(size_t j) const { return words_.data() + j * k_ * sub_dim_; }

  float* data() { return words_.data(); }
  const float* data() const { return words_.data(); }
  size_t num_floats() const { return words_.size(); }

 private:
  size_t m_, k_, sub_dim_;
  std::vector<float> words_;
};

}  // namespace rpq::quant
