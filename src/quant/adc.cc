#include "quant/adc.h"

#include "common/distance.h"

namespace rpq::quant {

std::vector<uint8_t> VectorQuantizer::EncodeDataset(const Dataset& data) const {
  std::vector<uint8_t> codes(data.size() * code_size());
  for (size_t i = 0; i < data.size(); ++i) {
    Encode(data[i], codes.data() + i * code_size());
  }
  return codes;
}

float SymmetricDistance(const VectorQuantizer& quantizer, const uint8_t* code_a,
                        const uint8_t* code_b) {
  std::vector<float> a(quantizer.decoded_dim()), b(quantizer.decoded_dim());
  quantizer.Decode(code_a, a.data());
  quantizer.Decode(code_b, b.data());
  return SquaredL2(a.data(), b.data(), a.size());
}

SdcTable::SdcTable(const PqQuantizer& quantizer, const float* query)
    : m_(quantizer.num_chunks()), k_(quantizer.num_centroids()),
      table_(m_ * k_) {
  std::vector<uint8_t> qcode(quantizer.code_size());
  quantizer.Encode(query, qcode.data());
  const Codebook& book = quantizer.codebook();
  size_t sub = book.sub_dim();
  for (size_t j = 0; j < m_; ++j) {
    const float* qword = book.Word(j, qcode[j]);
    for (size_t k = 0; k < k_; ++k) {
      table_[j * k_ + k] = SquaredL2(qword, book.Word(j, k), sub);
    }
  }
}

}  // namespace rpq::quant
