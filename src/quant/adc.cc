#include "quant/adc.h"

#include "common/distance.h"
#include "common/thread_pool.h"

namespace rpq::quant {

std::vector<uint8_t> VectorQuantizer::EncodeDataset(const Dataset& data,
                                                    ThreadPool* pool) const {
  const size_t cs = code_size();
  std::vector<uint8_t> codes(data.size() * cs);
  uint8_t* out = codes.data();
  ParallelFor(pool != nullptr ? pool : SharedPool(), data.size(),
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  Encode(data[i], out + i * cs);
                }
              });
  return codes;
}

float SymmetricDistance(const VectorQuantizer& quantizer, const uint8_t* code_a,
                        const uint8_t* code_b) {
  // Scratch survives across calls: SDC is invoked per candidate pair in the
  // ablation benches, and two heap allocations per call dominated it.
  thread_local std::vector<float> a, b;
  const size_t d = quantizer.decoded_dim();
  a.resize(d);
  b.resize(d);
  quantizer.Decode(code_a, a.data());
  quantizer.Decode(code_b, b.data());
  return SquaredL2(a.data(), b.data(), d);
}

SdcTable::SdcTable(const PqQuantizer& quantizer, const float* query)
    : DistanceLut(quantizer.num_chunks(), quantizer.num_centroids()) {
  std::vector<uint8_t> qcode(quantizer.code_size());
  quantizer.Encode(query, qcode.data());
  const Codebook& book = quantizer.codebook();
  size_t sub = book.sub_dim();
  for (size_t j = 0; j < m_; ++j) {
    simd::L2ToMany(book.Word(j, qcode[j]), book.Chunk(j), k_, sub,
                   table_.data() + j * k_);
  }
}

}  // namespace rpq::quant
