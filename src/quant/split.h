// K = 256 split-table regime: 8-bit PQ accuracy scored through the existing
// 4-bit FastScan shuffle kernels.
//
// A 256-entry float LUT cannot ride in a 16-lane shuffle register, so each
// chunk's codebook is trained with additive structure instead: a level-1
// codebook A_j (16 words, k-means on the chunk data) plus a level-2 codebook
// B_j (16 words, k-means on the within-chunk residuals), materialized as the
// 256-word product
//
//   Word(j, (a << 4) | b) = A_j[a] + B_j[b]
//
// inside an ordinary PqQuantizer — Encode (exact argmin over all 256 sums),
// Decode, BuildLookupTable and every downstream consumer work unchanged.
// Query-time distances decompose exactly:
//
//   || q_j - A[a] - B[b] ||^2 = u_j[a] + v_j[b] + cross_j[(a << 4) | b]
//     u_j[a] = || q_j - A[a] ||^2               (high-nibble LUT row 2j+1)
//     v_j[b] = || q_j - B[b] ||^2 - || q_j ||^2 (low-nibble  LUT row 2j)
//     cross_j[c] = 2 <A[c >> 4], B[c & 15]>     (query-INDEPENDENT)
//
// so a query needs only a 2m x 16 u8 table (SplitFastScanTable), scanned by
// simd::AdcFastScanSplit over blocks whose rows are the raw 8-bit code bytes
// — byte-identical to PackedCodes on the nibble-expanded code (low nibble =
// B, high nibble = A), which is why every SIMD backend scores it with the
// same pshufb/tbl kernels at exactly 2x the 4-bit per-code cost. The
// query-independent cross term folds into ONE float per stored vector
// (SplitPqModel::CrossSum at encode time), added after DecodeSum.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "quant/codebook.h"
#include "quant/fastscan.h"
#include "quant/pq.h"

namespace rpq::quant {

/// The two-level structure behind a K = 256 split-trained PqQuantizer: the
/// per-chunk level codebooks plus the precomputed cross terms. Attached to
/// the quantizer (PqQuantizer::split_model()), never used for encoding —
/// the materialized product codebook handles that.
struct SplitPqModel {
  Codebook a;  ///< m x 16 level-1 words (high nibble of each code byte)
  Codebook b;  ///< m x 16 level-2 residual words (low nibble)
  /// m x 256 floats: cross[j * 256 + c] = 2 <A_j[c >> 4], B_j[c & 15]>.
  /// Computed with the scalar kernels so it is identical no matter which
  /// backend trains or loads the model (scalar-vs-dispatched searches then
  /// disagree only through the shared float LUT rounding, as the 4-bit path
  /// already does).
  std::vector<float> cross;

  size_t num_chunks() const { return a.num_chunks(); }
  size_t sub_dim() const { return a.sub_dim(); }

  /// Fills `cross` from the current a/b words.
  void PrecomputeCross();

  /// Sum of the cross terms selected by one m-byte code — the per-vector
  /// constant an index stores next to the code (one float per vector).
  float CrossSum(const uint8_t* code) const {
    float acc = 0.f;
    for (size_t j = 0; j < num_chunks(); ++j) {
      acc += cross[j * 256 + code[j]];
    }
    return acc;
  }
};

/// Trains the split regime on `train`: per chunk, level-1 k-means (16 words)
/// then level-2 k-means on the residuals, materialized as a 256-word product
/// codebook with the SplitPqModel attached. Requires nbits == 8 with
/// K = 256 (the default); plain 4-bit FastScan covers K <= 16.
std::unique_ptr<PqQuantizer> TrainSplitPq(const Dataset& train,
                                          const PqOptions& options);

/// Rebuilds a split quantizer from its level codebooks (deserialization):
/// materializes the product codebook and recomputes the cross table — both
/// deterministic functions of A and B, so files only persist the levels.
std::unique_ptr<PqQuantizer> MakeSplitQuantizer(Codebook a, Codebook b);

/// Expands one m-byte split code into the 2m-nibble sequence whose
/// PackedCodes::Pack layout equals the split block layout: out[2j] = low
/// nibble (B index), out[2j + 1] = high nibble (A index). Used to feed
/// split codes through the existing 4-bit packing plumbing.
inline void ExpandSplitCode(const uint8_t* code, size_t m, uint8_t* out) {
  for (size_t j = 0; j < m; ++j) {
    out[2 * j] = static_cast<uint8_t>(code[j] & 0x0f);
    out[2 * j + 1] = static_cast<uint8_t>(code[j] >> 4);
  }
}

/// Query-time state for the split regime: the interleaved 2m x 16 u8 table
/// (built from the exact u/v decomposition above) plus the affine map back
/// to float. Estimates need the stored per-vector cross constant:
///
///   distance ~= DecodeSum(raw u16 sum) + cross_sum[i]
///
/// |estimate - float ADC| <= ErrorBound() exactly as in the 4-bit path (the
/// cross term is carried in float, so it adds no rounding error).
class SplitFastScanTable {
 public:
  /// Builds for one original-space query (applies the quantizer's rotation).
  /// The quantizer must be split-trained (split_model() != null).
  SplitFastScanTable(const PqQuantizer& quantizer, const float* query);
  /// Builds directly from the model and an already-rotated query — the IVF
  /// residual path hands in q - centroid without a quantizer round-trip.
  SplitFastScanTable(const SplitPqModel& model, const float* rotated_query);

  size_t num_chunks() const { return m_; }  ///< m (code bytes per vector)
  const uint8_t* lut8() const { return fs_.lut8(); }
  float bias() const { return fs_.bias(); }
  float scale() const { return fs_.scale(); }

  /// Maps a raw kernel sum to the float estimate, EXCLUDING the per-vector
  /// cross constant — callers add it (see Distance).
  float DecodeSum(uint32_t sum) const { return fs_.DecodeSum(sum); }

  /// Worst-case |estimate - float ADC| from u8 rounding (2m LUT rows).
  float ErrorBound() const { return fs_.ErrorBound(); }

  /// Estimate for one unpacked m-byte code + its stored cross constant; the
  /// integer sum matches the blocked kernels bit-for-bit.
  float Distance(const uint8_t* code, float cross_sum) const {
    const uint8_t* lut = fs_.lut8();
    uint32_t sum = 0;
    for (size_t j = 0; j < m_; ++j) {
      sum += lut[(2 * j) * 16 + (code[j] & 0x0f)];
      sum += lut[(2 * j + 1) * 16 + (code[j] >> 4)];
    }
    return fs_.DecodeSum(sum) + cross_sum;
  }

  /// Raw u16 sums for n_blocks split-layout blocks (32 sums per block).
  void ScanBlocks(const uint8_t* packed, size_t n_blocks,
                  uint16_t* sums) const;

 private:
  size_t m_;
  FastScanTable fs_;  // 2m interleaved rows sharing one scale/bias
};

}  // namespace rpq::quant
