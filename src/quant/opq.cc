#include "quant/opq.h"

#include <cstring>
#include <vector>

#include "common/logging.h"
#include "linalg/svd.h"
#include "quant/kmeans.h"

namespace rpq::quant {

std::unique_ptr<PqQuantizer> TrainOpq(const Dataset& train,
                                      const OpqOptions& options) {
  RPQ_CHECK(!train.empty());
  size_t n = train.size();
  size_t d = train.dim();
  RPQ_CHECK_EQ(d % options.pq.m, 0u);

  linalg::Matrix r = linalg::Matrix::Identity(d);
  std::vector<float> rotated(n * d);
  std::memcpy(rotated.data(), train.data(), n * d * sizeof(float));

  Codebook book;
  std::vector<float> reconstructed(n * d);
  size_t sub_dim = d / options.pq.m;

  for (size_t outer = 0; outer < options.outer_iters; ++outer) {
    // Codebook step on the current rotation.
    PqOptions pq = options.pq;
    pq.seed = options.pq.seed + outer;  // fresh k-means restarts help escape
    book = TrainCodebooks(rotated.data(), n, d, pq);

    // Reconstruct each rotated vector from its nearest codewords.
    for (size_t i = 0; i < n; ++i) {
      const float* row = rotated.data() + i * d;
      float* rec = reconstructed.data() + i * d;
      for (size_t j = 0; j < options.pq.m; ++j) {
        uint32_t c = NearestCentroid(row + j * sub_dim, book.Chunk(j),
                                     options.pq.effective_k(), sub_dim);
        std::memcpy(rec + j * sub_dim, book.Word(j, c), sub_dim * sizeof(float));
      }
    }

    // R-step: min_R ||R X - Y||  =>  R = Procrustes(X, Y), with X the original
    // data and Y the current reconstructions (both n x d, rows as samples).
    // Build the d x d cross matrix Y^T... ProcrustesRotation wants matrices
    // whose COLUMNS are samples; we pass X^T-shaped views via d x n matrices.
    linalg::Matrix xt(d, n), yt(d, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        xt.At(j, i) = train[i][j];
        yt.At(j, i) = reconstructed[i * d + j];
      }
    }
    r = linalg::ProcrustesRotation(xt, yt);

    // Re-rotate the data for the next codebook step.
    for (size_t i = 0; i < n; ++i) {
      linalg::MatVec(r, train[i], rotated.data() + i * d);
    }
  }

  // Final codebooks on the final rotation.
  book = TrainCodebooks(rotated.data(), n, d, options.pq);
  return std::make_unique<PqQuantizer>(std::move(book), std::move(r));
}

}  // namespace rpq::quant
