#include "quant/linkcode.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"

namespace rpq::quant {
namespace {

// Solves the small SPD system A x = b in place by Gaussian elimination with
// partial pivoting (num_links <= ~16, numerically benign).
std::vector<float> SolveDense(std::vector<double> a, std::vector<double> b,
                              size_t n) {
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) continue;  // leave x[col] = 0
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = a[r * n + col] / a[col * n + col];
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<float> x(n, 0.0f);
  for (size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * x[c];
    x[r] = std::fabs(a[r * n + r]) < 1e-12
               ? 0.0f
               : static_cast<float>(acc / a[r * n + r]);
  }
  return x;
}

}  // namespace

std::unique_ptr<LinkCodeIndex> LinkCodeIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const LinkCodeOptions& opt) {
  RPQ_CHECK_EQ(base.size(), graph.num_vertices());
  auto index =
      std::unique_ptr<LinkCodeIndex>(new LinkCodeIndex(base, graph));
  index->pq_ = PqQuantizer::Train(base, opt.pq);
  index->codes_ = index->pq_->EncodeDataset(base);

  size_t d = base.dim();
  size_t links = opt.num_links;

  // Least-squares fit of beta over a sample: residual ~ sum beta_r * edge_r.
  Rng rng(opt.pq.seed);
  size_t sample = std::min(opt.train_sample, base.size());
  auto ids = rng.SampleWithoutReplacement(base.size(), sample);

  std::vector<double> ata(links * links, 0.0);
  std::vector<double> atb(links, 0.0);
  std::vector<float> dec_v(d), dec_n(d);
  std::vector<std::vector<float>> edges(links, std::vector<float>(d));

  for (uint32_t v : ids) {
    index->pq_->Decode(index->codes_.data() + v * index->pq_->code_size(),
                       dec_v.data());
    const auto& nb = graph.Neighbors(v);
    size_t use = std::min(links, nb.size());
    if (use == 0) continue;
    for (size_t r = 0; r < use; ++r) {
      index->pq_->Decode(index->codes_.data() + nb[r] * index->pq_->code_size(),
                         dec_n.data());
      for (size_t j = 0; j < d; ++j) edges[r][j] = dec_n[j] - dec_v[j];
    }
    for (size_t r = use; r < links; ++r) {
      std::fill(edges[r].begin(), edges[r].end(), 0.0f);
    }
    for (size_t r = 0; r < links; ++r) {
      for (size_t s = r; s < links; ++s) {
        double dot = Dot(edges[r].data(), edges[s].data(), d);
        ata[r * links + s] += dot;
        if (s != r) ata[s * links + r] += dot;
      }
      double rb = 0;
      for (size_t j = 0; j < d; ++j) {
        rb += static_cast<double>(base[v][j] - dec_v[j]) * edges[r][j];
      }
      atb[r] += rb;
    }
  }
  // Ridge term keeps the system well-posed when neighbors are collinear.
  for (size_t r = 0; r < links; ++r) ata[r * links + r] += 1e-3;
  index->beta_ = SolveDense(std::move(ata), std::move(atb), links);
  return index;
}

void LinkCodeIndex::RefinedDecode(uint32_t v, float* out) const {
  size_t d = base_.dim();
  std::vector<float> dec_v(d);
  pq_->Decode(codes_.data() + v * pq_->code_size(), dec_v.data());
  std::copy(dec_v.begin(), dec_v.end(), out);
  const auto& nb = graph_.Neighbors(v);
  size_t use = std::min(beta_.size(), nb.size());
  std::vector<float> dec_n(d);
  for (size_t r = 0; r < use; ++r) {
    if (beta_[r] == 0.0f) continue;
    pq_->Decode(codes_.data() + nb[r] * pq_->code_size(), dec_n.data());
    float w = beta_[r];
    // Edges are measured against the UNREFINED decode, matching the fit.
    for (size_t j = 0; j < d; ++j) out[j] += w * (dec_n[j] - dec_v[j]);
  }
}

float LinkCodeIndex::RefinedDistance(const float* query, uint32_t v) const {
  std::vector<float> rec(base_.dim());
  RefinedDecode(v, rec.data());
  return SquaredL2(query, rec.data(), base_.dim());
}

}  // namespace rpq::quant
