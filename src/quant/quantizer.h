// Abstract interface every quantization method implements, so graph and disk
// indexes are quantizer-agnostic (paper §7 plugs PQ/OPQ/Catalyst/RPQ into the
// same search machinery).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace rpq {
class ThreadPool;
}

namespace rpq::quant {

struct SplitPqModel;  // quant/split.h — the K = 256 split-table structure

/// Maps vectors to compact byte codes and supports ADC distance lookup.
///
/// Code layout: one byte per chunk (K <= 256), code_size() == num_chunks().
/// A query-time ADC lookup table has num_chunks() * num_centroids() floats;
/// the estimated distance of a code is the sum of table entries selected by
/// its bytes (see adc.h).
class VectorQuantizer {
 public:
  virtual ~VectorQuantizer() = default;

  /// Input (original-space) dimensionality D.
  virtual size_t dim() const = 0;
  /// Dimensionality of decoded vectors (== dim() except for Catalyst, which
  /// quantizes in a learned d_out-dimensional space).
  virtual size_t decoded_dim() const = 0;
  virtual size_t num_chunks() const = 0;     ///< M
  virtual size_t num_centroids() const = 0;  ///< K
  size_t code_size() const { return num_chunks(); }

  /// Quantizes one original-space vector into code_size() bytes.
  virtual void Encode(const float* vec, uint8_t* code) const = 0;
  /// Reconstructs the quantized vector (decoded_dim() floats).
  virtual void Decode(const uint8_t* code, float* out) const = 0;
  /// Fills the ADC lookup table (num_chunks() * num_centroids() floats) for
  /// one original-space query.
  virtual void BuildLookupTable(const float* query, float* table) const = 0;
  /// Bytes needed to persist the model (codebooks + transforms), excluding
  /// the per-vector codes. Reported in the paper's Table 5.
  virtual size_t ModelSizeBytes() const = 0;

  /// The split-table structure behind this model when it was trained in the
  /// K = 256 split regime (quant/split.h: each chunk codebook is the sum set
  /// A + B of two 16-word level codebooks, so FastScan consumers can score
  /// full 8-bit codes through 4-bit shuffle kernels). Null for every other
  /// model — the capability probe FastScan-path consumers use instead of
  /// RTTI.
  virtual const SplitPqModel* split_model() const { return nullptr; }

  /// Encodes a whole dataset; returns n * code_size() bytes. Rows are split
  /// over `pool` (the process-wide SharedPool() when null) — Encode must be
  /// thread-safe, which every bundled quantizer's is.
  std::vector<uint8_t> EncodeDataset(const Dataset& data,
                                     ThreadPool* pool = nullptr) const;
};

}  // namespace rpq::quant
