// Catalyst baseline [57] ("Spreading vectors for similarity search"):
// a small neural network f: R^D -> S^{d_out-1} trained so that (a) ranking of
// neighbors is preserved (triplet loss on exact kNN) and (b) outputs spread
// uniformly over the sphere (KoLeo differential-entropy regularizer, weight
// lambda). The learned space is then product-quantized; queries are mapped
// through f before ADC. The paper configures d_out = 40, lambda = 0.005.
#pragma once

#include <memory>

#include "quant/pq.h"
#include "quant/quantizer.h"

namespace rpq::quant {

/// Catalyst training configuration.
struct CatalystOptions {
  size_t d_out = 40;       ///< output dimensionality (paper: 40)
  size_t hidden = 128;     ///< hidden layer width
  float lambda = 0.005f;   ///< KoLeo regularizer weight (paper: 0.005)
  float margin = 0.05f;    ///< triplet margin in the output space
  size_t epochs = 4;
  size_t batch_size = 64;
  float lr = 1e-3f;
  size_t knn_positives = 10;  ///< positives drawn from this many exact NNs
  PqOptions pq;               ///< quantizer trained on the output space
  uint64_t seed = 17;
};

/// Two-layer MLP (tanh) with L2-normalized output, + PQ on the output space.
class CatalystQuantizer : public VectorQuantizer {
 public:
  /// Trains the network on `train` then fits PQ codebooks on f(train).
  static std::unique_ptr<CatalystQuantizer> Train(const Dataset& train,
                                                  const CatalystOptions& options);

  size_t dim() const override { return d_in_; }
  size_t decoded_dim() const override { return d_out_; }
  size_t num_chunks() const override { return pq_->num_chunks(); }
  size_t num_centroids() const override { return pq_->num_centroids(); }

  void Encode(const float* vec, uint8_t* code) const override;
  void Decode(const uint8_t* code, float* out) const override;
  void BuildLookupTable(const float* query, float* table) const override;
  size_t ModelSizeBytes() const override;

  /// Applies the learned map f (d_out floats out).
  void Transform(const float* vec, float* out) const;

  /// Training wall-clock, reported in the paper's Table 4.
  double training_seconds() const { return training_seconds_; }

 private:
  CatalystQuantizer() = default;

  size_t d_in_ = 0, hidden_ = 0, d_out_ = 0;
  // Row-major weights: w1 (hidden x d_in), b1 (hidden),
  //                    w2 (d_out x hidden), b2 (d_out).
  std::vector<float> w1_, b1_, w2_, b2_;
  std::unique_ptr<PqQuantizer> pq_;  // trained in the output space
  double training_seconds_ = 0.0;
};

}  // namespace rpq::quant
