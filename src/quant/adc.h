// Asymmetric Distance Computation (ADC) helpers [37]: the query builds one
// lookup table of sub-distances; any database code's distance is then M table
// reads + adds. Batched scans go through the SIMD kernel subsystem and score
// 8-16 codes per iteration with vectorized table gathers.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/pq.h"
#include "quant/quantizer.h"
#include "simd/simd.h"

namespace rpq::quant {

/// Query-time lookup-table state shared by ADC and SDC:
/// table[j*K + k] = delta(query chunk j, codeword k). Supports single-code
/// and batched (vectorized) scans; the batched paths accumulate in the same
/// chunk order as Distance(), so all of them agree bit-for-bit.
class DistanceLut {
 public:
  /// Estimated squared distance of one code to the query.
  float Distance(const uint8_t* code) const {
    float acc = 0;
    const float* t = table_.data();
    for (size_t j = 0; j < m_; ++j, t += k_) acc += t[code[j]];
    return acc;
  }

  /// Batched scan over n contiguous codes (code i at codes + i*code_size()).
  void DistanceBatch(const uint8_t* codes, size_t n, float* out) const {
    simd::AdcBatch(table_.data(), m_, k_, codes, m_, n, out);
  }

  /// Batched scan over n codes at an explicit byte stride.
  void DistanceBatch(const uint8_t* codes, size_t code_stride, size_t n,
                     float* out) const {
    simd::AdcBatch(table_.data(), m_, k_, codes, code_stride, n, out);
  }

  /// Batched scan of codes addressed by vertex id: code for out[i] starts at
  /// codes + ids[i]*code_stride. This is the beam-search expansion kernel.
  void DistanceBatchGather(const uint8_t* codes, size_t code_stride,
                           const uint32_t* ids, size_t n, float* out) const {
    simd::AdcBatchGather(table_.data(), m_, k_, codes, code_stride, ids, n,
                         out);
  }

  size_t num_chunks() const { return m_; }
  size_t num_centroids() const { return k_; }
  const float* data() const { return table_.data(); }

 protected:
  DistanceLut(size_t m, size_t k) : m_(m), k_(k), table_(m * k) {}

  size_t m_, k_;
  std::vector<float> table_;
};

/// Query-time ADC state: the query stays exact, database codes are quantized.
class AdcTable : public DistanceLut {
 public:
  AdcTable(const VectorQuantizer& quantizer, const float* query)
      : DistanceLut(quantizer.num_chunks(), quantizer.num_centroids()) {
    quantizer.BuildLookupTable(query, table_.data());
  }
};

/// Query-time SDC state: the query is quantized first, then distances are
/// codeword-to-codeword lookups within each sub-codebook (computed in the
/// rotated space, where the per-chunk decomposition is exact). Higher
/// distance error than ADC — the trade-off §3.1 of the paper discusses; the
/// design-ablation bench quantifies it.
class SdcTable : public DistanceLut {
 public:
  /// Works for the whole PQ family (plain PQ, OPQ, deployed RPQ).
  SdcTable(const PqQuantizer& quantizer, const float* query);
};

/// Distance oracle over a flat n x code_size code array. Usable directly as a
/// BeamSearch DistFn: exposes both the single-vertex call and the batched
/// call, and BeamSearch picks the batched one.
struct AdcBatchOracle {
  const DistanceLut& lut;
  const uint8_t* codes;
  size_t code_size;

  float operator()(uint32_t v) const {
    return lut.Distance(codes + static_cast<size_t>(v) * code_size);
  }
  void operator()(const uint32_t* ids, size_t n, float* out) const {
    lut.DistanceBatchGather(codes, code_size, ids, n, out);
  }
};

/// Symmetric distance (SDC): both sides quantized; provided for completeness
/// and tests (the paper, like DiskANN, uses ADC in all experiments).
float SymmetricDistance(const VectorQuantizer& quantizer, const uint8_t* code_a,
                        const uint8_t* code_b);

}  // namespace rpq::quant
