// Asymmetric Distance Computation (ADC) helpers [37]: the query builds one
// lookup table of sub-distances; any database code's distance is then M table
// reads + adds.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/pq.h"
#include "quant/quantizer.h"

namespace rpq::quant {

/// Query-time ADC state: table[j*K + k] = delta(query chunk j, codeword k).
class AdcTable {
 public:
  AdcTable(const VectorQuantizer& quantizer, const float* query)
      : m_(quantizer.num_chunks()),
        k_(quantizer.num_centroids()),
        table_(m_ * k_) {
    quantizer.BuildLookupTable(query, table_.data());
  }

  /// Estimated squared distance of one code to the query.
  float Distance(const uint8_t* code) const {
    float acc = 0;
    const float* t = table_.data();
    for (size_t j = 0; j < m_; ++j, t += k_) acc += t[code[j]];
    return acc;
  }

  size_t num_chunks() const { return m_; }
  size_t num_centroids() const { return k_; }
  const float* data() const { return table_.data(); }

 private:
  size_t m_, k_;
  std::vector<float> table_;
};

/// Symmetric distance (SDC): both sides quantized; provided for completeness
/// and tests (the paper, like DiskANN, uses ADC in all experiments).
float SymmetricDistance(const VectorQuantizer& quantizer, const uint8_t* code_a,
                        const uint8_t* code_b);

/// Query-time SDC state: the query is quantized first, then distances are
/// codeword-to-codeword lookups within each sub-codebook (computed in the
/// rotated space, where the per-chunk decomposition is exact). Higher
/// distance error than ADC — the trade-off §3.1 of the paper discusses; the
/// design-ablation bench quantifies it.
class SdcTable {
 public:
  /// Works for the whole PQ family (plain PQ, OPQ, deployed RPQ).
  SdcTable(const PqQuantizer& quantizer, const float* query);

  /// Estimated squared distance of one database code to the quantized query.
  float Distance(const uint8_t* code) const {
    float acc = 0;
    const float* t = table_.data();
    for (size_t j = 0; j < m_; ++j, t += k_) acc += t[code[j]];
    return acc;
  }

 private:
  size_t m_, k_;
  std::vector<float> table_;  // table[j*K+k] = d(word(j, qcode_j), word(j, k))
};

}  // namespace rpq::quant
