// Classic Product Quantization [37] with an optional orthonormal pre-rotation
// (identity for plain PQ). OPQ and the deployed RPQ are both "rotation + PQ",
// so they reuse this class for query-time work.
#pragma once

#include <memory>
#include <optional>

#include "common/logging.h"
#include "linalg/matrix.h"
#include "quant/codebook.h"
#include "quant/quantizer.h"

namespace rpq::quant {

/// Training knobs shared by PQ-family quantizers.
struct PqOptions {
  size_t m = 8;            ///< number of chunks M (must divide dim)
  size_t k = 0;            ///< codewords per sub-codebook; 0 = auto from
                           ///< nbits (16 when nbits == 4, 256 when 8)
  size_t nbits = 8;        ///< bits per chunk code: 8, or 4 (K <= 16,
                           ///< FastScan-layout ready)
  size_t kmeans_iters = 25;
  uint64_t seed = 13;

  /// K actually trained: the nbits-implied default when k == 0, the explicit
  /// value otherwise. An explicit K the code width cannot hold fails loudly
  /// here — training a silently smaller codebook than requested is how
  /// recall regressions hide. K = 256 under FastScan is served by the split
  /// regime (quant/split.h), not by capping.
  size_t effective_k() const {
    if (k == 0) return nbits == 4 ? 16 : 256;
    RPQ_CHECK((nbits == 4 ? k <= 16 : k <= 256) &&
              "PqOptions.k does not fit nbits: K <= 16 for 4-bit codes, "
              "<= 256 for 8-bit (use TrainSplitPq for K = 256 FastScan)");
    return k;
  }
};

/// Rotation + per-chunk nearest-codeword quantizer.
class PqQuantizer : public VectorQuantizer {
 public:
  /// Trains plain PQ (identity rotation) on `train`.
  static std::unique_ptr<PqQuantizer> Train(const Dataset& train,
                                            const PqOptions& options);

  /// Builds a quantizer from existing parts (used by OPQ and RPQ deployment).
  /// `rotation` maps original vectors into the quantized space: y = R x.
  PqQuantizer(Codebook codebook, std::optional<linalg::Matrix> rotation);
  ~PqQuantizer() override;  // out-of-line: split_ is incomplete here

  size_t dim() const override { return dim_; }
  size_t decoded_dim() const override { return dim_; }
  size_t num_chunks() const override { return codebook_.num_chunks(); }
  size_t num_centroids() const override { return codebook_.num_centroids(); }

  void Encode(const float* vec, uint8_t* code) const override;
  /// Decodes back to the ORIGINAL space (applies R^T after codeword lookup).
  void Decode(const uint8_t* code, float* out) const override;
  void BuildLookupTable(const float* query, float* table) const override;
  size_t ModelSizeBytes() const override;

  const Codebook& codebook() const { return codebook_; }
  bool has_rotation() const { return rotation_.has_value(); }
  const linalg::Matrix& rotation() const { return *rotation_; }

  /// Maps an original-space vector into the quantized space (y = R x;
  /// identity copy for plain PQ). Public because split-table construction
  /// (quant/split.h) builds its per-level LUT rows from the rotated query.
  void Rotate(const float* vec, float* out) const;

  /// The split structure when this model came from TrainSplitPq; null for
  /// plain models. The codebook_ then materializes A + B, so Encode /
  /// Decode / BuildLookupTable need no special casing.
  const SplitPqModel* split_model() const override { return split_.get(); }
  void set_split_model(std::unique_ptr<SplitPqModel> split);

  /// Mean squared reconstruction error over a dataset (distortion metric).
  double Distortion(const Dataset& data) const;

 private:
  size_t dim_;
  Codebook codebook_;
  std::optional<linalg::Matrix> rotation_;  // D x D orthonormal
  std::unique_ptr<SplitPqModel> split_;     // K = 256 split regime, or null
};

/// Trains the M sub-codebooks by running k-means on each chunk of `rotated`
/// (an n x dim row-major buffer already in the quantized space).
Codebook TrainCodebooks(const float* rotated, size_t n, size_t dim,
                        const PqOptions& options);

}  // namespace rpq::quant
