// io_uring-shaped asynchronous submission/completion layer over the
// simulated SSD, plus the beam-guided readahead prefetch cache.
//
// Real DiskANN-style servers keep many NVMe reads in flight per query
// (libaio/io_uring at queue depth 8-32) so that traversal latency is
// dominated by the *slowest* read of each wave, not the sum. The simulator
// reproduces that structurally: callers enqueue reads with SubmitRead and
// drain them with PollCompletions, which performs the device reads in
// submission order (so the seeded fault schedule stays deterministic) and
// charges the wave's *overlapped* time
//
//     wave_seconds = max(max_i cost_i, sum_i cost_i / queue_depth)
//
// instead of `sum_i cost_i`. A wave of D uniform reads therefore costs
// ~max(latency, D*latency/QD); a single read costs exactly its serial
// latency, which is what keeps `io_width=1` bit-identical to the old
// synchronous path. Per-read faults (transient errors, latency spikes) keep
// firing per completion — an error surfaces in that completion's Status, a
// spike stretches that read's cost and hence possibly the whole wave.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "disk/ssd_simulator.h"

namespace rpq::disk {

/// One finished read, reported by PollCompletions in submission order.
struct IoCompletion {
  uint32_t block = 0;      ///< block id that was read
  uint64_t user_data = 0;  ///< opaque tag passed to SubmitRead
  Status status;           ///< IOError on an injected transient failure
  double device_seconds = 0;  ///< this read's own (un-overlapped) cost
};

/// Submission/completion context bound to one device and one query.
/// Not thread-safe: each query drives its own context (the device itself is
/// shared and const, exactly as in DiskIndex::Search).
class AsyncIoContext {
 public:
  /// `queue_depth` is the number of reads the device serves concurrently
  /// (clamped to >= 1). Submission is unbounded — depth only shapes cost.
  AsyncIoContext(const SsdSimulator& ssd, size_t queue_depth);

  /// Enqueues a read of `block` into `buf` (which must hold block_bytes()
  /// and stay alive until the next PollCompletions).
  void SubmitRead(uint32_t block, uint8_t* buf, uint64_t user_data);

  /// Performs every pending read, appends one IoCompletion per submission
  /// (in submission order) to `out` after clearing it, and folds the
  /// accounting into `stats`: reads/bytes/io_errors/latency_spikes per
  /// completion, plus ONE overlapped wave charge to `simulated_seconds` and
  /// an `io_waves` bump. Returns the number of completions.
  size_t PollCompletions(std::vector<IoCompletion>* out, IoStats* stats);

  size_t pending() const { return sq_.size(); }
  size_t queue_depth() const { return queue_depth_; }

 private:
  struct Sqe {
    uint32_t block;
    uint8_t* buf;
    uint64_t user_data;
  };

  const SsdSimulator& ssd_;
  size_t queue_depth_;
  std::vector<Sqe> sq_;
};

/// Tiny FIFO cache for speculatively fetched blocks. The prefetcher submits
/// reads for next-best unexpanded beam candidates alongside each demand
/// wave; when the beam later expands one of them the block is already
/// resident and the expansion costs zero device time. A wrong guess is
/// evicted (and counted as wasted), never fatal.
class PrefetchCache {
 public:
  explicit PrefetchCache(size_t capacity) : capacity_(capacity) {}

  bool Contains(uint32_t block) const {
    return blocks_.find(block) != blocks_.end();
  }

  /// Removes `block` from the cache, moving its bytes into `out`.
  /// Returns false (and leaves `out` alone) on a miss.
  bool Take(uint32_t block, std::vector<uint8_t>* out);

  /// Inserts a fetched block, evicting the oldest entry when full.
  void Insert(uint32_t block, std::vector<uint8_t> buf);

  size_t size() const { return blocks_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::unordered_map<uint32_t, std::vector<uint8_t>> blocks_;
  std::deque<uint32_t> order_;  // FIFO eviction order
};

}  // namespace rpq::disk
