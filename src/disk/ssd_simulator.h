// Simulated SSD backing store.
//
// The paper's hybrid scenario (DiskANN [36]) keeps the PG and full vectors on
// an NVMe drive and pays one 4 KiB-sector read per visited node. This offline
// build has no dedicated NVMe device, so we substitute a deterministic block
// store: node blocks live in a flat byte arena, every read is counted, and a
// configurable per-read latency (default 100 us, typical of NVMe random
// reads) is added to the query's simulated clock. QPS and "Disk I/O time"
// reported by the benches therefore reproduce the structural trade-off
// (reads x latency) that drives Figure 5. See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace rpq::disk {

/// I/O accounting for one query or one experiment.
struct IoStats {
  size_t reads = 0;              ///< block reads issued
  size_t bytes = 0;              ///< bytes transferred
  double simulated_seconds = 0;  ///< reads * per-read latency (+ bandwidth)
};

/// Configuration of the simulated device.
struct SsdOptions {
  size_t sector_bytes = 4096;        ///< read granularity
  double read_latency_seconds = 1e-4;///< fixed cost per random read (100 us)
  double bandwidth_bytes_per_s = 2e9;///< sequential throughput component
};

/// Flat block device: fixed-size node blocks, counted sector reads.
class SsdSimulator {
 public:
  /// `block_bytes` is rounded up to whole sectors (DiskANN packs one node —
  /// vector + adjacency — per sector when it fits).
  SsdSimulator(size_t num_blocks, size_t block_bytes, const SsdOptions& options);

  size_t num_blocks() const { return num_blocks_; }
  size_t block_bytes() const { return block_bytes_; }
  size_t sectors_per_block() const { return sectors_per_block_; }

  /// Writes a full block (construction time, not counted as query I/O).
  void WriteBlock(size_t block_id, const void* data, size_t size);

  /// Reads a full block, charging latency and bandwidth to `stats`.
  void ReadBlock(size_t block_id, void* out, size_t size, IoStats* stats) const;

  /// Total bytes the simulated device occupies.
  size_t DeviceBytes() const { return arena_.size(); }

 private:
  size_t num_blocks_;
  size_t block_bytes_;   // rounded to sector multiple
  size_t sectors_per_block_;
  SsdOptions opt_;
  std::vector<uint8_t> arena_;
};

}  // namespace rpq::disk
