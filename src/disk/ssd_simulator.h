// Simulated SSD backing store.
//
// The paper's hybrid scenario (DiskANN [36]) keeps the PG and full vectors on
// an NVMe drive and pays one 4 KiB-sector read per visited node. This offline
// build has no dedicated NVMe device, so we substitute a deterministic block
// store: node blocks live in a flat byte arena, every read is counted, and a
// configurable per-read latency (default 100 us, typical of NVMe random
// reads) is added to the query's simulated clock. QPS and "Disk I/O time"
// reported by the benches therefore reproduce the structural trade-off
// (reads x latency) that drives Figure 5. See DESIGN.md §3.
//
// Fault model: real NVMe devices exhibit transient read failures (media
// errors that succeed on retry) and tail-latency spikes (GC pauses, write
// stalls). Both are reproduced here behind seeded knobs —
// `transient_error_rate` makes ReadBlock return an IOError Status, and
// `latency_spike_rate`/`latency_spike_multiplier` multiply one read's
// simulated cost. Decisions come from a deterministic fault::Injector so a
// given (seed, read index) schedule replays exactly; the effective rates are
// the max of the device's own knobs and the process-wide RPQ_FAULTS plan.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"

namespace rpq::disk {

/// I/O accounting for one query or one experiment.
struct IoStats {
  size_t reads = 0;              ///< block reads issued (successful)
  size_t bytes = 0;              ///< bytes transferred
  double simulated_seconds = 0;  ///< overlapped device time (see AsyncIoContext)
  size_t io_errors = 0;          ///< transient read failures observed
  size_t retries = 0;            ///< re-issued reads after a transient error
  size_t latency_spikes = 0;     ///< reads that hit an injected tail spike
  size_t io_waves = 0;           ///< async submission waves polled
  size_t prefetch_issued = 0;    ///< speculative readahead reads submitted
  size_t prefetch_hits = 0;      ///< expansions served from the prefetch cache
  size_t prefetch_wasted = 0;    ///< speculated blocks never consumed
};

/// Configuration of the simulated device.
struct SsdOptions {
  size_t sector_bytes = 4096;        ///< read granularity
  double read_latency_seconds = 1e-4;///< fixed cost per random read (100 us)
  double bandwidth_bytes_per_s = 2e9;///< sequential throughput component
  double transient_error_rate = 0;   ///< P(read returns IOError) in [0,1]
  double latency_spike_rate = 0;     ///< P(read costs multiplier x) in [0,1]
  double latency_spike_multiplier = 20;  ///< spike cost factor (~2 ms @ 100 us)
  uint64_t fault_seed = 1;           ///< seed for the device's injector
  /// Reads the device serves concurrently: an async wave of D submissions
  /// charges max(slowest read, serial_sum / queue_depth) of simulated time
  /// (disk/async_io.h). Purely a device property — single-read waves cost
  /// their serial latency regardless, so it cannot change sync-path timing.
  size_t queue_depth = 8;
};

/// Flat block device: fixed-size node blocks, counted sector reads.
class SsdSimulator {
 public:
  /// `block_bytes` is rounded up to whole sectors (DiskANN packs one node —
  /// vector + adjacency — per sector when it fits).
  SsdSimulator(size_t num_blocks, size_t block_bytes, const SsdOptions& options);

  size_t num_blocks() const { return num_blocks_; }
  size_t block_bytes() const { return block_bytes_; }
  size_t sectors_per_block() const { return sectors_per_block_; }

  /// Writes a full block (construction time, not counted as query I/O).
  void WriteBlock(size_t block_id, const void* data, size_t size);

  /// Reads a full block, charging latency and bandwidth to `stats`. Returns
  /// IOError on an injected transient failure — the failed attempt's latency
  /// is still charged (the device was busy), and `stats->io_errors` bumps;
  /// callers retry at their own policy, counting `stats->retries`.
  Status ReadBlock(size_t block_id, void* out, size_t size,
                   IoStats* stats) const;

  /// Total bytes the simulated device occupies.
  size_t DeviceBytes() const { return arena_.size(); }

  /// The device's effective fault plan (own knobs merged with RPQ_FAULTS).
  fault::Plan fault_plan() const { return injector_.plan(); }

  /// The device's configuration (queue depth, latency, fault knobs).
  const SsdOptions& options() const { return opt_; }

 private:
  size_t num_blocks_;
  size_t block_bytes_;   // rounded to sector multiple
  size_t sectors_per_block_;
  SsdOptions opt_;
  std::vector<uint8_t> arena_;
  // Mutable: ReadBlock is logically const (device state is immutable); the
  // injector only advances its atomic roll counters.
  mutable fault::Injector injector_;
};

}  // namespace rpq::disk
