#include "disk/disk_index.h"

#include <algorithm>
#include <cstring>

#include "common/distance.h"
#include "common/logging.h"
#include "quant/adc.h"
#include "refine/refine.h"

namespace rpq::disk {
namespace {

// Node block layout: dim floats, then uint32 degree, then degree uint32 ids.
size_t BlockPayloadBytes(size_t dim, size_t degree) {
  return dim * sizeof(float) + sizeof(uint32_t) + degree * sizeof(uint32_t);
}

}  // namespace

std::unique_ptr<DiskIndex> DiskIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer, const DiskIndexOptions& options) {
  RPQ_CHECK_EQ(base.size(), graph.num_vertices());
  auto index = std::unique_ptr<DiskIndex>(new DiskIndex(quantizer));
  index->num_vertices_ = base.size();
  index->dim_ = base.dim();
  index->entry_ = graph.entry_point();

  size_t max_degree = 0;
  for (uint32_t v = 0; v < base.size(); ++v) {
    max_degree = std::max(max_degree, graph.Neighbors(v).size());
  }
  index->max_degree_ = max_degree;

  index->ssd_ = std::make_unique<SsdSimulator>(
      base.size(), BlockPayloadBytes(base.dim(), max_degree), options.ssd);
  index->max_read_retries_ = options.max_read_retries;
  index->retry_backoff_seconds_ = options.retry_backoff_seconds;

  std::vector<uint8_t> block(index->ssd_->block_bytes(), 0);
  for (uint32_t v = 0; v < base.size(); ++v) {
    uint8_t* p = block.data();
    std::memcpy(p, base[v], base.dim() * sizeof(float));
    p += base.dim() * sizeof(float);
    const auto& nb = graph.Neighbors(v);
    uint32_t deg = static_cast<uint32_t>(nb.size());
    std::memcpy(p, &deg, sizeof(deg));
    p += sizeof(deg);
    if (deg > 0) std::memcpy(p, nb.data(), deg * sizeof(uint32_t));
    index->ssd_->WriteBlock(v, block.data(),
                            BlockPayloadBytes(base.dim(), deg));
  }

  index->codes_ = quantizer.EncodeDataset(base);
  if (options.fastscan && quantizer.num_centroids() <= 16) {
    // 4-bit quantizer: keep packed per-vertex neighbor blocks in memory so
    // ADC navigation runs through the FastScan shuffle kernels.
    index->fastscan_ = quant::PackedNeighborBlocks::Build(
        graph, index->codes_.data(), quantizer.code_size());
  }
  return index;
}

bool DiskIndex::ReadBlockWithRetry(uint32_t v, uint8_t* block,
                                   IoStats* io) const {
  // Bounded linear backoff: each retry charges `retry_backoff_seconds` of
  // simulated wait (a real driver would sleep before re-issuing) on top of
  // the failed attempt's device time, which ReadBlock already charged.
  for (size_t attempt = 0;; ++attempt) {
    Status s = ssd_->ReadBlock(v, block, ssd_->block_bytes(), io);
    if (s.ok()) return true;
    if (attempt >= max_read_retries_) return false;
    ++io->retries;
    io->simulated_seconds += retry_backoff_seconds_;
  }
}

DiskSearchResult DiskIndex::Search(const float* query, size_t k,
                                   const graph::BeamSearchOptions& options,
                                   obs::QueryTrace* trace) const {
  DiskSearchResult out;
  const size_t beam_width = std::max(options.beam_width, k);
  const size_t code_size = quantizer_.code_size();

  // Navigation estimator: float ADC by default, the FastScan u8 shuffle path
  // when packed neighbor blocks were built. Either way results are reranked
  // by exact distances from the fetched vectors, so routing precision only
  // moves hop counts.
  std::optional<quant::AdcTable> table;
  std::optional<quant::FastScanTable> ftable;
  std::optional<quant::FastScanNeighborOracle> fast;
  {
    obs::ScopedStage span(obs::Stage::kLutBuild, trace);
    if (fastscan_.has_value()) {
      ftable.emplace(quantizer_, query);
      fast.emplace(*ftable, codes_.data(), code_size, *fastscan_);
    } else {
      table.emplace(quantizer_, query);
    }
  }

  // Same flat-beam hot loop as graph::BeamSearch (see detail::FlatBeam), with
  // an SSD block read per expansion and an exact-distance rerank on the side.
  graph::VisitedTable& visited = *graph::TlsVisitedTable(num_vertices_);
  visited.NextEpoch();
  graph::detail::FlatBeam beam(beam_width);  // ascending by (est distance, id)
  std::vector<uint32_t> cand_ids;
  std::vector<float> cand_dists;
  cand_ids.reserve(max_degree_);
  cand_dists.reserve(max_degree_);
  // The shared refinement buffer, fed exact distances from fetched vectors:
  // the disk path refines DURING traversal (re-fetching blocks afterwards
  // would double the I/O), so no separate Refiner stage runs — the buffer's
  // (distance, id) selection is the whole epilogue, bit-identical to the
  // TopK it replaces.
  refine::CandidateBuffer rerank(k);

  const float entry_dist =
      fast.has_value()
          ? (*fast)(entry_)
          : table->Distance(codes_.data() +
                            static_cast<size_t>(entry_) * code_size);
  beam.Insert(entry_dist, entry_);
  ++out.stats.dist_comps;
  visited.MarkVisited(entry_);

  std::vector<uint8_t> block(ssd_->block_bytes());
  {
  obs::ScopedStage span(obs::Stage::kBeam, trace);
  for (;;) {
    const size_t next = beam.NextUnexpanded();
    if (next == graph::detail::FlatBeam::kNone) break;
    // The deadline covers simulated device time too: latency that would be
    // real on the modeled hardware counts against the budget.
    if (options.deadline.Expired(out.io.simulated_seconds)) {
      out.stats.deadline_hit = true;
      out.degraded = true;
      break;
    }
    beam.MarkExpanded(next);
    uint32_t v = beam.entries()[next].id;
    ++out.stats.hops;

    // One SSD read delivers v's full vector and adjacency; transient errors
    // retry with bounded backoff, and a block that stays unreadable is
    // skipped (degraded recall, never a crash).
    if (!ReadBlockWithRetry(v, block.data(), &out.io)) {
      out.degraded = true;
      continue;
    }
    const float* vec = reinterpret_cast<const float*>(block.data());
    uint32_t deg = 0;
    std::memcpy(&deg, block.data() + dim_ * sizeof(float), sizeof(deg));
    const uint32_t* nbrs = reinterpret_cast<const uint32_t*>(
        block.data() + dim_ * sizeof(float) + sizeof(uint32_t));

    rerank.Push(SquaredL2(query, vec, dim_), v);

    if (fast.has_value()) {
      // Score the whole adjacency from the packed in-memory blocks (same
      // adjacency order as the on-disk lists); distance-first pruning skips
      // the visited table for candidates the beam could never keep (see the
      // neighbor-block branch of graph::BeamSearch).
      if (deg == 0) continue;
      cand_dists.resize(deg);
      fast->ScoreNeighbors(v, nbrs, deg, cand_dists.data());
      out.stats.dist_comps += deg;
      float worst = beam.WorstDist();
      for (uint32_t idx = 0; idx < deg; ++idx) {
        if (cand_dists[idx] > worst) continue;
        uint32_t u = nbrs[idx];
        if (visited.Visited(u)) {
          ++out.stats.visited_hits;
          continue;
        }
        visited.MarkVisited(u);
        beam.Insert(cand_dists[idx], u);
        worst = beam.WorstDist();
      }
      continue;
    }

    quant::AdcBatchOracle adc{*table, codes_.data(), code_size};
    cand_ids.clear();
    for (uint32_t idx = 0; idx < deg; ++idx) {
      if (idx + 4 < deg) visited.Prefetch(nbrs[idx + 4]);
      uint32_t u = nbrs[idx];
      if (visited.Visited(u)) {
        ++out.stats.visited_hits;
        continue;
      }
      visited.MarkVisited(u);
      cand_ids.push_back(u);
    }
    if (cand_ids.empty()) continue;
    cand_dists.resize(cand_ids.size());
    adc(cand_ids.data(), cand_ids.size(), cand_dists.data());
    out.stats.dist_comps += cand_ids.size();
    for (size_t i = 0; i < cand_ids.size(); ++i) {
      beam.Insert(cand_dists[i], cand_ids[i]);
    }
  }
  }

  {
    obs::ScopedStage span(obs::Stage::kMerge, trace);
    out.results = rerank.TakeSortedNeighbors(k);
  }
  // Simulated device time is not wall time, so it is reported as its own
  // span rather than being timed.
  if (trace != nullptr || obs::MetricsEnabled()) {
    obs::RecordSpan(obs::Stage::kIo,
                    static_cast<uint64_t>(out.io.simulated_seconds * 1e9),
                    trace);
  }
  if (obs::MetricsEnabled()) {
    static const obs::CounterId queries = obs::GetCounter("disk.queries");
    static const obs::CounterId reads = obs::GetCounter("disk.block_reads");
    static const obs::CounterId bytes = obs::GetCounter("disk.io_bytes");
    static const obs::CounterId hops = obs::GetCounter("graph.hops");
    static const obs::CounterId dist = obs::GetCounter("graph.dist_comps");
    static const obs::CounterId hits = obs::GetCounter("graph.visited_hits");
    static const obs::CounterId errors = obs::GetCounter("disk.io_errors");
    static const obs::CounterId retries = obs::GetCounter("disk.retries");
    obs::Add(queries, 1);
    obs::Add(reads, out.io.reads);
    obs::Add(bytes, out.io.bytes);
    obs::Add(hops, out.stats.hops);
    obs::Add(dist, out.stats.dist_comps);
    obs::Add(hits, out.stats.visited_hits);
    obs::Add(errors, out.io.io_errors);
    obs::Add(retries, out.io.retries);
  }
  return out;
}

size_t DiskIndex::MemoryBytes() const {
  size_t bytes = codes_.size() + quantizer_.ModelSizeBytes();
  if (fastscan_.has_value()) bytes += fastscan_->MemoryBytes();
  return bytes;
}

}  // namespace rpq::disk
