#include "disk/disk_index.h"

#include <algorithm>
#include <cstring>

#include "common/distance.h"
#include "common/logging.h"
#include "quant/adc.h"

namespace rpq::disk {
namespace {

// Node block layout: dim floats, then uint32 degree, then degree uint32 ids.
size_t BlockPayloadBytes(size_t dim, size_t degree) {
  return dim * sizeof(float) + sizeof(uint32_t) + degree * sizeof(uint32_t);
}

}  // namespace

std::unique_ptr<DiskIndex> DiskIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer, const DiskIndexOptions& options) {
  RPQ_CHECK_EQ(base.size(), graph.num_vertices());
  auto index = std::unique_ptr<DiskIndex>(new DiskIndex(quantizer));
  index->num_vertices_ = base.size();
  index->dim_ = base.dim();
  index->entry_ = graph.entry_point();

  size_t max_degree = 0;
  for (uint32_t v = 0; v < base.size(); ++v) {
    max_degree = std::max(max_degree, graph.Neighbors(v).size());
  }
  index->max_degree_ = max_degree;

  index->ssd_ = std::make_unique<SsdSimulator>(
      base.size(), BlockPayloadBytes(base.dim(), max_degree), options.ssd);

  std::vector<uint8_t> block(index->ssd_->block_bytes(), 0);
  for (uint32_t v = 0; v < base.size(); ++v) {
    uint8_t* p = block.data();
    std::memcpy(p, base[v], base.dim() * sizeof(float));
    p += base.dim() * sizeof(float);
    const auto& nb = graph.Neighbors(v);
    uint32_t deg = static_cast<uint32_t>(nb.size());
    std::memcpy(p, &deg, sizeof(deg));
    p += sizeof(deg);
    if (deg > 0) std::memcpy(p, nb.data(), deg * sizeof(uint32_t));
    index->ssd_->WriteBlock(v, block.data(),
                            BlockPayloadBytes(base.dim(), deg));
  }

  index->codes_ = quantizer.EncodeDataset(base);
  index->visited_ = graph::VisitedTable(base.size());
  return index;
}

DiskSearchResult DiskIndex::Search(const float* query, size_t k,
                                   const graph::BeamSearchOptions& options) const {
  DiskSearchResult out;
  const size_t beam_width = std::max(options.beam_width, k);
  quant::AdcTable table(quantizer_, query);
  const size_t code_size = quantizer_.code_size();

  auto adc = [&](uint32_t v) {
    ++out.stats.dist_comps;
    return table.Distance(codes_.data() + v * code_size);
  };

  visited_.NextEpoch();
  std::vector<Neighbor> beam;       // ascending by ADC distance
  std::vector<bool> expanded;
  TopK rerank(k);                   // exact distances from fetched vectors

  beam.push_back({adc(entry_), entry_});
  expanded.push_back(false);
  visited_.MarkVisited(entry_);

  std::vector<uint8_t> block(ssd_->block_bytes());
  for (;;) {
    size_t next = beam.size();
    for (size_t i = 0; i < beam.size(); ++i) {
      if (!expanded[i]) {
        next = i;
        break;
      }
    }
    if (next == beam.size()) break;
    expanded[next] = true;
    uint32_t v = beam[next].id;
    ++out.stats.hops;

    // One SSD read delivers v's full vector and adjacency.
    ssd_->ReadBlock(v, block.data(), ssd_->block_bytes(), &out.io);
    const float* vec = reinterpret_cast<const float*>(block.data());
    uint32_t deg = 0;
    std::memcpy(&deg, block.data() + dim_ * sizeof(float), sizeof(deg));
    const uint32_t* nbrs = reinterpret_cast<const uint32_t*>(
        block.data() + dim_ * sizeof(float) + sizeof(uint32_t));

    rerank.Push(SquaredL2(query, vec, dim_), v);

    for (uint32_t idx = 0; idx < deg; ++idx) {
      uint32_t u = nbrs[idx];
      if (visited_.Visited(u)) continue;
      visited_.MarkVisited(u);
      float d = adc(u);
      Neighbor cand{d, u};
      if (beam.size() >= beam_width && !(cand < beam.back())) continue;
      auto it = std::lower_bound(beam.begin(), beam.end(), cand);
      size_t pos = static_cast<size_t>(it - beam.begin());
      beam.insert(it, cand);
      expanded.insert(expanded.begin() + pos, false);
      if (beam.size() > beam_width) {
        beam.pop_back();
        expanded.pop_back();
      }
    }
  }

  out.results = rerank.Take();
  return out;
}

size_t DiskIndex::MemoryBytes() const {
  return codes_.size() + quantizer_.ModelSizeBytes();
}

}  // namespace rpq::disk
