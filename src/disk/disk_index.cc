#include "disk/disk_index.h"

#include <algorithm>
#include <cstring>

#include "common/distance.h"
#include "common/logging.h"
#include "quant/adc.h"

namespace rpq::disk {
namespace {

// Node block layout: dim floats, then uint32 degree, then degree uint32 ids.
size_t BlockPayloadBytes(size_t dim, size_t degree) {
  return dim * sizeof(float) + sizeof(uint32_t) + degree * sizeof(uint32_t);
}

}  // namespace

std::unique_ptr<DiskIndex> DiskIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer, const DiskIndexOptions& options) {
  RPQ_CHECK_EQ(base.size(), graph.num_vertices());
  auto index = std::unique_ptr<DiskIndex>(new DiskIndex(quantizer));
  index->num_vertices_ = base.size();
  index->dim_ = base.dim();
  index->entry_ = graph.entry_point();

  size_t max_degree = 0;
  for (uint32_t v = 0; v < base.size(); ++v) {
    max_degree = std::max(max_degree, graph.Neighbors(v).size());
  }
  index->max_degree_ = max_degree;

  index->ssd_ = std::make_unique<SsdSimulator>(
      base.size(), BlockPayloadBytes(base.dim(), max_degree), options.ssd);

  std::vector<uint8_t> block(index->ssd_->block_bytes(), 0);
  for (uint32_t v = 0; v < base.size(); ++v) {
    uint8_t* p = block.data();
    std::memcpy(p, base[v], base.dim() * sizeof(float));
    p += base.dim() * sizeof(float);
    const auto& nb = graph.Neighbors(v);
    uint32_t deg = static_cast<uint32_t>(nb.size());
    std::memcpy(p, &deg, sizeof(deg));
    p += sizeof(deg);
    if (deg > 0) std::memcpy(p, nb.data(), deg * sizeof(uint32_t));
    index->ssd_->WriteBlock(v, block.data(),
                            BlockPayloadBytes(base.dim(), deg));
  }

  index->codes_ = quantizer.EncodeDataset(base);
  return index;
}

DiskSearchResult DiskIndex::Search(const float* query, size_t k,
                                   const graph::BeamSearchOptions& options) const {
  DiskSearchResult out;
  const size_t beam_width = std::max(options.beam_width, k);
  quant::AdcTable table(quantizer_, query);
  const size_t code_size = quantizer_.code_size();
  quant::AdcBatchOracle adc{table, codes_.data(), code_size};

  // Same flat-beam hot loop as graph::BeamSearch (see detail::FlatBeam), with
  // an SSD block read per expansion and an exact-distance rerank on the side.
  graph::VisitedTable& visited = *graph::TlsVisitedTable(num_vertices_);
  visited.NextEpoch();
  graph::detail::FlatBeam beam(beam_width);  // ascending by (ADC distance, id)
  std::vector<uint32_t> cand_ids;
  std::vector<float> cand_dists;
  cand_ids.reserve(max_degree_);
  cand_dists.reserve(max_degree_);
  TopK rerank(k);  // exact distances from fetched vectors

  beam.Insert(adc(entry_), entry_);
  ++out.stats.dist_comps;
  visited.MarkVisited(entry_);

  std::vector<uint8_t> block(ssd_->block_bytes());
  for (;;) {
    const size_t next = beam.NextUnexpanded();
    if (next == graph::detail::FlatBeam::kNone) break;
    beam.MarkExpanded(next);
    uint32_t v = beam.entries()[next].id;
    ++out.stats.hops;

    // One SSD read delivers v's full vector and adjacency.
    ssd_->ReadBlock(v, block.data(), ssd_->block_bytes(), &out.io);
    const float* vec = reinterpret_cast<const float*>(block.data());
    uint32_t deg = 0;
    std::memcpy(&deg, block.data() + dim_ * sizeof(float), sizeof(deg));
    const uint32_t* nbrs = reinterpret_cast<const uint32_t*>(
        block.data() + dim_ * sizeof(float) + sizeof(uint32_t));

    rerank.Push(SquaredL2(query, vec, dim_), v);

    cand_ids.clear();
    for (uint32_t idx = 0; idx < deg; ++idx) {
      if (idx + 4 < deg) visited.Prefetch(nbrs[idx + 4]);
      uint32_t u = nbrs[idx];
      if (visited.Visited(u)) continue;
      visited.MarkVisited(u);
      cand_ids.push_back(u);
    }
    if (cand_ids.empty()) continue;
    cand_dists.resize(cand_ids.size());
    adc(cand_ids.data(), cand_ids.size(), cand_dists.data());
    out.stats.dist_comps += cand_ids.size();
    for (size_t i = 0; i < cand_ids.size(); ++i) {
      beam.Insert(cand_dists[i], cand_ids[i]);
    }
  }

  out.results = rerank.Take();
  return out;
}

size_t DiskIndex::MemoryBytes() const {
  return codes_.size() + quantizer_.ModelSizeBytes();
}

}  // namespace rpq::disk
