#include "disk/disk_index.h"

#include <algorithm>
#include <cstring>

#include "common/distance.h"
#include "common/logging.h"
#include "disk/async_io.h"
#include "quant/adc.h"
#include "refine/refine.h"

namespace rpq::disk {
namespace {

// Node block layout: dim floats, then uint32 degree, then degree uint32 ids.
size_t BlockPayloadBytes(size_t dim, size_t degree) {
  return dim * sizeof(float) + sizeof(uint32_t) + degree * sizeof(uint32_t);
}

// One slot of the in-flight demand wave.
struct WaveSlot {
  enum State : uint8_t { kPending, kReady, kFailed };
  uint32_t id = 0;
  State state = kPending;
  std::vector<uint8_t> buf;
};

// Completion tags: demand reads carry their wave-slot index; speculative
// readahead reads are tagged with kSpecTag so the two never collide.
constexpr uint64_t kSpecTag = uint64_t{1} << 32;

std::vector<uint8_t> TakeBuffer(std::vector<std::vector<uint8_t>>* spare,
                                size_t bytes) {
  if (!spare->empty()) {
    std::vector<uint8_t> b = std::move(spare->back());
    spare->pop_back();
    return b;
  }
  return std::vector<uint8_t>(bytes);
}

}  // namespace

std::unique_ptr<DiskIndex> DiskIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer, const DiskIndexOptions& options) {
  RPQ_CHECK_EQ(base.size(), graph.num_vertices());
  auto index = std::unique_ptr<DiskIndex>(new DiskIndex(quantizer));
  index->num_vertices_ = base.size();
  index->dim_ = base.dim();
  index->entry_ = graph.entry_point();

  size_t max_degree = 0;
  for (uint32_t v = 0; v < base.size(); ++v) {
    max_degree = std::max(max_degree, graph.Neighbors(v).size());
  }
  index->max_degree_ = max_degree;

  index->ssd_ = std::make_unique<SsdSimulator>(
      base.size(), BlockPayloadBytes(base.dim(), max_degree), options.ssd);
  index->max_read_retries_ = options.max_read_retries;
  index->retry_backoff_seconds_ = options.retry_backoff_seconds;
  index->io_width_ = std::max<size_t>(1, options.io_width);
  index->readahead_ = options.readahead;

  std::vector<uint8_t> block(index->ssd_->block_bytes(), 0);
  for (uint32_t v = 0; v < base.size(); ++v) {
    uint8_t* p = block.data();
    std::memcpy(p, base[v], base.dim() * sizeof(float));
    p += base.dim() * sizeof(float);
    const auto& nb = graph.Neighbors(v);
    uint32_t deg = static_cast<uint32_t>(nb.size());
    std::memcpy(p, &deg, sizeof(deg));
    p += sizeof(deg);
    if (deg > 0) std::memcpy(p, nb.data(), deg * sizeof(uint32_t));
    index->ssd_->WriteBlock(v, block.data(),
                            BlockPayloadBytes(base.dim(), deg));
  }

  index->codes_ = quantizer.EncodeDataset(base);
  if (options.fastscan && quantizer.num_centroids() <= 16) {
    // 4-bit quantizer: keep packed per-vertex neighbor blocks in memory so
    // ADC navigation runs through the FastScan shuffle kernels.
    index->fastscan_ = quant::PackedNeighborBlocks::Build(
        graph, index->codes_.data(), quantizer.code_size());
  }
  return index;
}

DiskSearchResult DiskIndex::Search(const float* query, size_t k,
                                   const graph::BeamSearchOptions& options,
                                   obs::QueryTrace* trace,
                                   const DiskIoOptions& io_opt) const {
  DiskSearchResult out;
  const size_t beam_width = std::max(options.beam_width, k);
  const size_t code_size = quantizer_.code_size();
  const size_t io_width =
      std::max<size_t>(1, io_opt.io_width != 0 ? io_opt.io_width : io_width_);
  const size_t readahead =
      io_opt.readahead != 0 ? io_opt.readahead : readahead_;

  // Navigation estimator: float ADC by default, the FastScan u8 shuffle path
  // when packed neighbor blocks were built. Either way results are reranked
  // by exact distances from the fetched vectors, so routing precision only
  // moves hop counts.
  std::optional<quant::AdcTable> table;
  std::optional<quant::FastScanTable> ftable;
  std::optional<quant::FastScanNeighborOracle> fast;
  {
    obs::ScopedStage span(obs::Stage::kLutBuild, trace);
    if (fastscan_.has_value()) {
      ftable.emplace(quantizer_, query);
      fast.emplace(*ftable, codes_.data(), code_size, *fastscan_);
    } else {
      table.emplace(quantizer_, query);
    }
  }

  // Same flat-beam hot loop as graph::BeamSearch (see detail::FlatBeam), now
  // wave-structured: up to `io_width` best unexpanded entries are drained
  // per iteration, their SSD reads overlap through AsyncIoContext, and the
  // readahead prefetcher speculates on the next-best candidates while the
  // wave is in flight. Exact-distance rerank still happens on the side.
  graph::VisitedTable& visited = *graph::TlsVisitedTable(num_vertices_);
  visited.NextEpoch();
  graph::detail::FlatBeam beam(beam_width);  // ascending by (est distance, id)
  std::vector<uint32_t> cand_ids;
  std::vector<float> cand_dists;
  cand_ids.reserve(max_degree_);
  cand_dists.reserve(max_degree_);
  // The shared refinement buffer, fed exact distances from fetched vectors:
  // the disk path refines DURING traversal (re-fetching blocks afterwards
  // would double the I/O), so no separate Refiner stage runs — the buffer's
  // (distance, id) selection is the whole epilogue, bit-identical to the
  // TopK it replaces.
  refine::CandidateBuffer rerank(k);

  const float entry_dist =
      fast.has_value()
          ? (*fast)(entry_)
          : table->Distance(codes_.data() +
                            static_cast<size_t>(entry_) * code_size);
  beam.Insert(entry_dist, entry_);
  ++out.stats.dist_comps;
  visited.MarkVisited(entry_);

  // Scores one fetched node block: exact rerank of the node itself (counted
  // as a distance computation, like the memory backends count their rerank)
  // plus estimate-scored beam inserts for its adjacency.
  const auto process_block = [&](uint32_t v, const uint8_t* blk) {
    const float* vec = reinterpret_cast<const float*>(blk);
    uint32_t deg = 0;
    std::memcpy(&deg, blk + dim_ * sizeof(float), sizeof(deg));
    const uint32_t* nbrs = reinterpret_cast<const uint32_t*>(
        blk + dim_ * sizeof(float) + sizeof(uint32_t));

    rerank.Push(SquaredL2(query, vec, dim_), v);
    ++out.stats.dist_comps;

    if (fast.has_value()) {
      // Score the whole adjacency from the packed in-memory blocks (same
      // adjacency order as the on-disk lists); distance-first pruning skips
      // the visited table for candidates the beam could never keep (see the
      // neighbor-block branch of graph::BeamSearch).
      if (deg == 0) return;
      cand_dists.resize(deg);
      fast->ScoreNeighbors(v, nbrs, deg, cand_dists.data());
      out.stats.dist_comps += deg;
      float worst = beam.WorstDist();
      for (uint32_t idx = 0; idx < deg; ++idx) {
        if (cand_dists[idx] > worst) continue;
        uint32_t u = nbrs[idx];
        if (visited.Visited(u)) {
          ++out.stats.visited_hits;
          continue;
        }
        visited.MarkVisited(u);
        beam.Insert(cand_dists[idx], u);
        worst = beam.WorstDist();
      }
      return;
    }

    quant::AdcBatchOracle adc{*table, codes_.data(), code_size};
    cand_ids.clear();
    for (uint32_t idx = 0; idx < deg; ++idx) {
      if (idx + graph::kVisitedPrefetchDistance < deg) {
        visited.Prefetch(nbrs[idx + graph::kVisitedPrefetchDistance]);
      }
      uint32_t u = nbrs[idx];
      if (visited.Visited(u)) {
        ++out.stats.visited_hits;
        continue;
      }
      visited.MarkVisited(u);
      cand_ids.push_back(u);
    }
    if (cand_ids.empty()) return;
    cand_dists.resize(cand_ids.size());
    adc(cand_ids.data(), cand_ids.size(), cand_dists.data());
    out.stats.dist_comps += cand_ids.size();
    for (size_t i = 0; i < cand_ids.size(); ++i) {
      beam.Insert(cand_dists[i], cand_ids[i]);
    }
  };

  AsyncIoContext aio(*ssd_, ssd_->options().queue_depth);
  // The cache must be able to hold every still-unexpanded speculation: the
  // loop only terminates once the whole beam is expanded, so a cached block
  // that survives in the beam is a guaranteed (eventual) hit — evicting
  // early would convert those hits into wasted reads. Bound by the beam
  // width (plus slack for churn); per-query memory is ~beam_width blocks.
  PrefetchCache cache(
      readahead > 0 ? beam_width + 4 * readahead : 0);
  std::vector<WaveSlot> wave;
  wave.reserve(io_width);
  std::vector<IoCompletion> completions;
  std::vector<std::vector<uint8_t>> spare;  // recycled block buffers
  std::unordered_map<uint32_t, std::vector<uint8_t>> spec_inflight;

  {
  obs::ScopedStage span(obs::Stage::kBeam, trace);
  for (;;) {
    if (beam.NextUnexpanded() == graph::detail::FlatBeam::kNone) break;
    // The deadline covers simulated device time too: latency that would be
    // real on the modeled hardware counts against the budget. Checked once
    // per wave (per hop at io_width=1), so an expensive wave surfaces as a
    // degraded partial answer at the next boundary.
    if (options.deadline.Expired(out.io.simulated_seconds)) {
      out.stats.deadline_hit = true;
      out.degraded = true;
      break;
    }

    // Drain up to io_width best unexpanded entries into this wave — the
    // same (estimate, id) order the sequential path expands one at a time.
    wave.clear();
    while (wave.size() < io_width) {
      const size_t next = beam.NextUnexpanded();
      if (next == graph::detail::FlatBeam::kNone) break;
      beam.MarkExpanded(next);
      WaveSlot slot;
      slot.id = beam.entries()[next].id;
      wave.push_back(std::move(slot));
      ++out.stats.hops;
    }

    // Demand submissions; a prefetch-cache hit already holds the block and
    // costs no device time.
    for (size_t i = 0; i < wave.size(); ++i) {
      WaveSlot& s = wave[i];
      if (readahead > 0 && cache.Take(s.id, &s.buf)) {
        s.state = WaveSlot::kReady;
        ++out.io.prefetch_hits;
        continue;
      }
      s.buf = TakeBuffer(&spare, ssd_->block_bytes());
      aio.SubmitRead(s.id, s.buf.data(), static_cast<uint64_t>(i));
    }

    // Beam-guided readahead: speculate on the next-best unexpanded
    // candidates (the beam's estimate order IS the prediction) while the
    // demand wave is in flight. Failed speculative reads are dropped, not
    // retried — the block simply falls back to a demand read if expanded.
    if (readahead > 0) {
      size_t speculated = 0;
      for (const auto& e : beam.entries()) {
        if (speculated >= readahead) break;
        if (e.expanded != 0) continue;
        if (cache.Contains(e.id) ||
            spec_inflight.find(e.id) != spec_inflight.end()) {
          continue;
        }
        spec_inflight.emplace(e.id, TakeBuffer(&spare, ssd_->block_bytes()));
        aio.SubmitRead(e.id, spec_inflight[e.id].data(), kSpecTag | e.id);
        ++out.io.prefetch_issued;
        ++speculated;
      }
    }

    if (aio.pending() > 0) {
      // One overlapped wave: demand + speculative reads complete together,
      // charging max(slowest, serial/queue_depth) of simulated time.
      aio.PollCompletions(&completions, &out.io);
      for (IoCompletion& c : completions) {
        if (c.user_data & kSpecTag) {
          auto it = spec_inflight.find(c.block);
          if (c.status.ok()) {
            cache.Insert(c.block, std::move(it->second));
          } else {
            spare.push_back(std::move(it->second));
          }
          spec_inflight.erase(it);
          continue;
        }
        WaveSlot& s = wave[c.user_data];
        s.state = c.status.ok() ? WaveSlot::kReady : WaveSlot::kFailed;
      }

      // Bounded retry of failed DEMAND reads (PR 8 semantics): each round
      // charges `retry_backoff_seconds` per block before re-issuing, and the
      // retry wave overlaps on the device like any other.
      for (size_t round = 0; round < max_read_retries_; ++round) {
        bool any = false;
        for (size_t i = 0; i < wave.size(); ++i) {
          if (wave[i].state != WaveSlot::kFailed) continue;
          ++out.io.retries;
          out.io.simulated_seconds += retry_backoff_seconds_;
          aio.SubmitRead(wave[i].id, wave[i].buf.data(),
                         static_cast<uint64_t>(i));
          any = true;
        }
        if (!any) break;
        aio.PollCompletions(&completions, &out.io);
        for (IoCompletion& c : completions) {
          WaveSlot& s = wave[c.user_data];
          s.state = c.status.ok() ? WaveSlot::kReady : WaveSlot::kFailed;
        }
      }
    }

    // Score fetched nodes in wave (estimate, id) order — identical to the
    // sequential expansion order. A block that stayed unreadable through all
    // retries is skipped (degraded recall, never a crash).
    for (WaveSlot& s : wave) {
      if (s.state == WaveSlot::kReady) {
        process_block(s.id, s.buf.data());
      } else {
        out.degraded = true;
      }
      spare.push_back(std::move(s.buf));
    }
  }
  }
  // Speculated blocks never consumed by an expansion (still cached or still
  // accounted in-flight) were wasted reads.
  out.io.prefetch_wasted = out.io.prefetch_issued - out.io.prefetch_hits;

  {
    obs::ScopedStage span(obs::Stage::kMerge, trace);
    out.results = rerank.TakeSortedNeighbors(k);
  }
  // Simulated device time is not wall time, so it is reported as its own
  // span rather than being timed.
  if (trace != nullptr || obs::MetricsEnabled()) {
    obs::RecordSpan(obs::Stage::kIo,
                    static_cast<uint64_t>(out.io.simulated_seconds * 1e9),
                    trace);
  }
  if (obs::MetricsEnabled()) {
    static const obs::CounterId queries = obs::GetCounter("disk.queries");
    static const obs::CounterId reads = obs::GetCounter("disk.block_reads");
    static const obs::CounterId bytes = obs::GetCounter("disk.io_bytes");
    static const obs::CounterId hops = obs::GetCounter("graph.hops");
    static const obs::CounterId dist = obs::GetCounter("graph.dist_comps");
    static const obs::CounterId hits = obs::GetCounter("graph.visited_hits");
    static const obs::CounterId errors = obs::GetCounter("disk.io_errors");
    static const obs::CounterId retries = obs::GetCounter("disk.retries");
    static const obs::CounterId spikes = obs::GetCounter("disk.latency_spikes");
    static const obs::CounterId waves = obs::GetCounter("disk.io_waves");
    static const obs::CounterId pf_issued =
        obs::GetCounter("disk.prefetch_issued");
    static const obs::CounterId pf_hits = obs::GetCounter("disk.prefetch_hits");
    static const obs::CounterId pf_wasted =
        obs::GetCounter("disk.prefetch_wasted");
    obs::Add(queries, 1);
    obs::Add(reads, out.io.reads);
    obs::Add(bytes, out.io.bytes);
    obs::Add(hops, out.stats.hops);
    obs::Add(dist, out.stats.dist_comps);
    obs::Add(hits, out.stats.visited_hits);
    obs::Add(errors, out.io.io_errors);
    obs::Add(retries, out.io.retries);
    obs::Add(spikes, out.io.latency_spikes);
    obs::Add(waves, out.io.io_waves);
    obs::Add(pf_issued, out.io.prefetch_issued);
    obs::Add(pf_hits, out.io.prefetch_hits);
    obs::Add(pf_wasted, out.io.prefetch_wasted);
  }
  return out;
}

size_t DiskIndex::MemoryBytes() const {
  size_t bytes = codes_.size() + quantizer_.ModelSizeBytes();
  if (fastscan_.has_value()) bytes += fastscan_->MemoryBytes();
  return bytes;
}

}  // namespace rpq::disk
