// DiskANN-style hybrid index (paper §7, "integration of RPQ for hybrid
// scenario"): compact codes + codebook stay in memory for ADC navigation;
// full vectors and adjacency live in (simulated) SSD blocks, one node per
// block. Each next-hop expansion costs one block read; exact distances from
// the fetched vectors re-rank the final answer, exactly as DiskANN does.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/topk.h"
#include "data/dataset.h"
#include "disk/ssd_simulator.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "quant/fastscan.h"
#include "quant/quantizer.h"

namespace rpq::disk {

/// Hybrid index construction knobs.
struct DiskIndexOptions {
  SsdOptions ssd;
  /// Route with FastScan shuffle scans when the quantizer is 4-bit capable
  /// (K <= 16). Navigation only — results are still exact-reranked from the
  /// fetched full-precision vectors, so this changes hops, not the ranking
  /// rule of what is returned.
  bool fastscan = true;
  /// Transient read failures are retried up to this many times before the
  /// hop is abandoned (the node is skipped, traversal continues through the
  /// rest of the beam — a lost block degrades recall, never correctness).
  size_t max_read_retries = 3;
  /// Simulated backoff charged per retry, on top of the failed attempt's
  /// device time (both land in the io stage).
  double retry_backoff_seconds = 50e-6;
  /// Async wave width: up to this many best unexpanded beam entries are
  /// drained per iteration and their block reads submitted together through
  /// AsyncIoContext, overlapping on the device up to `ssd.queue_depth`.
  /// io_width=1 (with readahead=0) reproduces the sequential path
  /// bit-for-bit — same hops, same results, same simulated time.
  size_t io_width = 1;
  /// Beam-guided readahead: alongside each demand wave, submit speculative
  /// reads for up to this many next-best unexpanded candidates (ranked by
  /// the same FastScan/ADC estimates that order the beam) into a small
  /// prefetch cache. A later expansion of a speculated block is a zero-cost
  /// hit; a wrong guess is counted (`IoStats::prefetch_wasted`), not fatal.
  /// 0 disables speculation.
  size_t readahead = 0;
};

/// Per-query async I/O overrides; 0 means "use the index's build-time
/// default". (An explicit per-query opt-out of a configured readahead is
/// not expressible — build with readahead=0 to disable speculation.)
struct DiskIoOptions {
  size_t io_width = 0;
  size_t readahead = 0;
};

/// Result of one hybrid query.
struct DiskSearchResult {
  std::vector<Neighbor> results;  ///< ascending by EXACT distance (reranked)
  /// hops == beam expansions; with readahead=0 also == block reads (each
  /// expansion is one demand read), while speculative readahead decouples
  /// the two (prefetch hits skip the read, wrong guesses add reads).
  graph::SearchStats stats;
  IoStats io;                     ///< simulated device accounting
  /// True when the answer is partial: the deadline fired mid-beam or a block
  /// stayed unreadable through all retries.
  bool degraded = false;
};

/// PQ-navigated, disk-resident graph index.
///
/// Search is const and thread-safe: the visited table comes from
/// thread-local storage and all other per-query state is stack-local, so
/// concurrent queries share only immutable index data (the SSD simulator's
/// IoStats are accumulated per-call, not on the device).
class DiskIndex {
 public:
  /// Lays out one block per node: [vector | degree | neighbor ids].
  /// `quantizer` is borrowed and must outlive the index.
  static std::unique_ptr<DiskIndex> Build(const Dataset& base,
                                          const graph::ProximityGraph& graph,
                                          const quant::VectorQuantizer& quantizer,
                                          const DiskIndexOptions& options = {});

  /// Beam search with ADC navigation + full-precision rerank. `trace`, when
  /// set, receives per-stage spans (lut_build / beam / merge, plus the
  /// simulated device time as the io stage). `io` overrides the build-time
  /// wave/readahead knobs for this query (0 = keep the index default).
  DiskSearchResult Search(const float* query, size_t k,
                          const graph::BeamSearchOptions& options,
                          obs::QueryTrace* trace = nullptr,
                          const DiskIoOptions& io = {}) const;

  /// Bytes resident in memory: codes + codebook/transform model (+ packed
  /// FastScan neighbor blocks when routing with them).
  size_t MemoryBytes() const;
  /// Bytes on the simulated device.
  size_t DeviceBytes() const { return ssd_->DeviceBytes(); }
  size_t num_vertices() const { return num_vertices_; }
  uint32_t entry_point() const { return entry_; }
  /// True when queries navigate through the FastScan shuffle path.
  bool fastscan_routing() const { return fastscan_.has_value(); }

 private:
  DiskIndex(const quant::VectorQuantizer& quantizer) : quantizer_(quantizer) {}

  const quant::VectorQuantizer& quantizer_;
  size_t max_read_retries_ = 3;
  double retry_backoff_seconds_ = 50e-6;
  size_t io_width_ = 1;
  size_t readahead_ = 0;
  std::unique_ptr<SsdSimulator> ssd_;
  std::vector<uint8_t> codes_;  // in-memory compact codes, n * code_size
  std::optional<quant::PackedNeighborBlocks> fastscan_;
  size_t num_vertices_ = 0;
  size_t dim_ = 0;
  size_t max_degree_ = 0;
  uint32_t entry_ = 0;
};

}  // namespace rpq::disk
