#include "disk/ssd_simulator.h"

namespace rpq::disk {

SsdSimulator::SsdSimulator(size_t num_blocks, size_t block_bytes,
                           const SsdOptions& options)
    : num_blocks_(num_blocks), opt_(options) {
  RPQ_CHECK_GT(options.sector_bytes, 0u);
  sectors_per_block_ =
      (block_bytes + options.sector_bytes - 1) / options.sector_bytes;
  if (sectors_per_block_ == 0) sectors_per_block_ = 1;
  block_bytes_ = sectors_per_block_ * options.sector_bytes;
  arena_.assign(num_blocks_ * block_bytes_, 0);
}

void SsdSimulator::WriteBlock(size_t block_id, const void* data, size_t size) {
  RPQ_CHECK_LT(block_id, num_blocks_);
  RPQ_CHECK_LE(size, block_bytes_);
  std::memcpy(arena_.data() + block_id * block_bytes_, data, size);
}

void SsdSimulator::ReadBlock(size_t block_id, void* out, size_t size,
                             IoStats* stats) const {
  RPQ_CHECK_LT(block_id, num_blocks_);
  RPQ_CHECK_LE(size, block_bytes_);
  std::memcpy(out, arena_.data() + block_id * block_bytes_, size);
  if (stats != nullptr) {
    ++stats->reads;
    stats->bytes += block_bytes_;
    stats->simulated_seconds +=
        opt_.read_latency_seconds +
        static_cast<double>(block_bytes_) / opt_.bandwidth_bytes_per_s;
  }
}

}  // namespace rpq::disk
