#include "disk/ssd_simulator.h"

#include <algorithm>

namespace rpq::disk {
namespace {

// The device rolls against the stricter of its own knobs and the global
// RPQ_FAULTS plan, so an operator can inject errors into an already-built
// stack without re-plumbing options.
fault::Plan EffectivePlan(const SsdOptions& opt) {
  fault::Plan plan;
  plan.seed = opt.fault_seed;
  plan.set_rate(fault::Point::kDiskReadError, opt.transient_error_rate);
  plan.set_rate(fault::Point::kDiskLatencySpike, opt.latency_spike_rate);
  if (fault::GlobalFaultsEnabled()) {
    const fault::Plan global = fault::GlobalInjector().plan();
    for (auto p : {fault::Point::kDiskReadError, fault::Point::kDiskLatencySpike}) {
      plan.set_rate(p, std::max(plan.rate(p), global.rate(p)));
    }
  }
  return plan;
}

}  // namespace

SsdSimulator::SsdSimulator(size_t num_blocks, size_t block_bytes,
                           const SsdOptions& options)
    : num_blocks_(num_blocks), opt_(options), injector_(EffectivePlan(options)) {
  RPQ_CHECK_GT(options.sector_bytes, 0u);
  sectors_per_block_ =
      (block_bytes + options.sector_bytes - 1) / options.sector_bytes;
  if (sectors_per_block_ == 0) sectors_per_block_ = 1;
  block_bytes_ = sectors_per_block_ * options.sector_bytes;
  arena_.assign(num_blocks_ * block_bytes_, 0);
}

void SsdSimulator::WriteBlock(size_t block_id, const void* data, size_t size) {
  RPQ_CHECK_LT(block_id, num_blocks_);
  RPQ_CHECK_LE(size, block_bytes_);
  std::memcpy(arena_.data() + block_id * block_bytes_, data, size);
}

Status SsdSimulator::ReadBlock(size_t block_id, void* out, size_t size,
                               IoStats* stats) const {
  if (block_id >= num_blocks_ || size > block_bytes_) {
    return Status::InvalidArgument("ReadBlock out of range");
  }
  double cost = opt_.read_latency_seconds +
                static_cast<double>(block_bytes_) / opt_.bandwidth_bytes_per_s;
  if (injector_.plan().any()) {
    if (injector_.Fire(fault::Point::kDiskLatencySpike)) {
      cost *= opt_.latency_spike_multiplier;
      if (stats != nullptr) ++stats->latency_spikes;
    }
    if (injector_.Fire(fault::Point::kDiskReadError)) {
      // The device was still occupied for the failed attempt.
      if (stats != nullptr) {
        ++stats->io_errors;
        stats->simulated_seconds += cost;
      }
      return Status::IOError("transient read error on block " +
                             std::to_string(block_id));
    }
  }
  std::memcpy(out, arena_.data() + block_id * block_bytes_, size);
  if (stats != nullptr) {
    ++stats->reads;
    stats->bytes += block_bytes_;
    stats->simulated_seconds += cost;
  }
  return Status::OK();
}

}  // namespace rpq::disk
