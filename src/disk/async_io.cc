#include "disk/async_io.h"

#include <algorithm>

#include "obs/metrics.h"

namespace rpq::disk {

AsyncIoContext::AsyncIoContext(const SsdSimulator& ssd, size_t queue_depth)
    : ssd_(ssd), queue_depth_(std::max<size_t>(1, queue_depth)) {}

void AsyncIoContext::SubmitRead(uint32_t block, uint8_t* buf,
                                uint64_t user_data) {
  sq_.push_back(Sqe{block, buf, user_data});
}

size_t AsyncIoContext::PollCompletions(std::vector<IoCompletion>* out,
                                       IoStats* stats) {
  out->clear();
  if (sq_.empty()) return 0;
  const size_t depth = sq_.size();
  out->reserve(depth);

  // Reads execute in submission order so the device's seeded fault injector
  // sees the same roll sequence a synchronous caller would produce.
  double total = 0.0;
  double worst = 0.0;
  for (const Sqe& sqe : sq_) {
    IoStats one;
    Status s = ssd_.ReadBlock(sqe.block, sqe.buf, ssd_.block_bytes(), &one);
    stats->reads += one.reads;
    stats->bytes += one.bytes;
    stats->io_errors += one.io_errors;
    stats->latency_spikes += one.latency_spikes;
    total += one.simulated_seconds;
    worst = std::max(worst, one.simulated_seconds);
    out->push_back(
        IoCompletion{sqe.block, sqe.user_data, std::move(s),
                     one.simulated_seconds});
  }
  sq_.clear();

  // Overlap model: up to queue_depth_ reads proceed concurrently, so the
  // wave occupies the slower of (a) its longest single read and (b) the
  // serial time divided by the effective parallelism. A wave of one read
  // charges exactly its serial cost; queue_depth=1 degenerates to the sum.
  const double wave =
      std::max(worst, total / static_cast<double>(queue_depth_));
  stats->simulated_seconds += wave;
  ++stats->io_waves;

  if (obs::MetricsEnabled()) {
    static const obs::HistogramId qd = obs::GetHistogram("disk.queue_depth");
    obs::Record(qd, depth);
  }
  return depth;
}

bool PrefetchCache::Take(uint32_t block, std::vector<uint8_t>* out) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;
  *out = std::move(it->second);
  blocks_.erase(it);
  auto pos = std::find(order_.begin(), order_.end(), block);
  if (pos != order_.end()) order_.erase(pos);
  return true;
}

void PrefetchCache::Insert(uint32_t block, std::vector<uint8_t> buf) {
  if (capacity_ == 0) return;
  auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    it->second = std::move(buf);
    return;
  }
  while (blocks_.size() >= capacity_ && !order_.empty()) {
    blocks_.erase(order_.front());
    order_.pop_front();
  }
  blocks_.emplace(block, std::move(buf));
  order_.push_back(block);
}

}  // namespace rpq::disk
